"""Perturbation wrappers around a locate-time model.

These implement the error models of the paper's Sections 6 and 7:

* :class:`EvenOddPerturbation` — the Section 7 sensitivity error: given
  an error amount ``E``, the perturbed model returns
  ``locate_time(S, D) + E`` when ``D`` is even and
  ``locate_time(S, D) - E`` when ``D`` is odd.
* :class:`ShortLocateDeviation` — the Section 6 validation gap: the
  region of the model covering short locates near the physical track
  ends is the least accurate, so the ground-truth drive adds a small
  bias plus deterministic per-pair noise to short locates.  Schedules
  with many requests are dominated by exactly those locates, which is
  why the estimate error grows with schedule length in Figure 8.

All wrappers expose the same interface as
:class:`~repro.model.locate.LocateTimeModel` (``geometry``,
``locate_time``, ``locate_times``, ``pairwise_times``, ``oracle``), so
schedulers and drives accept them interchangeably.
"""

from __future__ import annotations

import numpy as np

from repro.model.locate import LocateTimeModel


class ModelWrapper:
    """Base class: delegates to a wrapped model, transforms its output."""

    def __init__(self, base: LocateTimeModel) -> None:
        self.base = base

    @property
    def geometry(self):
        """Geometry of the wrapped model."""
        return self.base.geometry

    def _transform(self, sources, destinations, times) -> np.ndarray:
        raise NotImplementedError

    def locate_time(self, source: int, destination: int) -> float:
        times = self.locate_times(
            source, np.asarray([destination], dtype=np.int64)
        )
        return float(times[0])

    def locate_times(self, source: int, destinations) -> np.ndarray:
        destinations = np.asarray(destinations, dtype=np.int64)
        times = self.base.locate_times(source, destinations)
        return self._transform(
            np.asarray(source, dtype=np.int64), destinations, times
        )

    def times(self, sources, destinations) -> np.ndarray:
        sources = np.asarray(sources, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
        base_times = self.base.times(sources, destinations)
        return self._transform(sources, destinations, base_times)

    def pairwise_times(self, sources, destinations) -> np.ndarray:
        sources = np.asarray(sources, dtype=np.int64).reshape(-1, 1)
        destinations = np.asarray(destinations, dtype=np.int64).reshape(1, -1)
        times = self.base.pairwise_times(sources, destinations)
        return self._transform(sources, destinations, times)

    def travel_sections(self, source: int, destinations) -> np.ndarray:
        """Physical head travel (perturbations do not move the head)."""
        return self.base.travel_sections(source, destinations)

    @property
    def segment_transfer_seconds(self) -> float:
        """Transfer time per segment of the wrapped model."""
        return self.base.segment_transfer_seconds

    def rewind_seconds(self, segment) -> np.ndarray:
        """Rewind time of the wrapped model (perturbations target
        locates only)."""
        return self.base.rewind_seconds(segment)

    def oracle(self):
        """Calibration-oracle adapter (see :meth:`LocateTimeModel.oracle`)."""

        def measure(source: int, destinations: np.ndarray) -> np.ndarray:
            return self.locate_times(source, destinations)

        return measure


class EvenOddPerturbation(ModelWrapper):
    """The Section 7 error model: ``+E`` to even destinations, ``-E`` to odd.

    Over any complete schedule every requested segment is a destination
    exactly once, so the *total* perturbation is the same constant for
    every ordering — which is why the paper finds OPT completely immune
    to this error even at ``E = 10`` while the greedy LOSS is led astray
    edge by edge.

    Times are floored at zero (a locate cannot take negative time).
    """

    def __init__(self, base: LocateTimeModel, error_seconds: float) -> None:
        super().__init__(base)
        self.error_seconds = float(error_seconds)

    def _transform(self, sources, destinations, times) -> np.ndarray:
        offset = np.where(
            destinations % 2 == 0, self.error_seconds, -self.error_seconds
        )
        return np.maximum(0.0, times + offset)


class ShortLocateDeviation(ModelWrapper):
    """Ground-truth deviation concentrated on short locates.

    Parameters
    ----------
    base:
        The idealized model (the "true key points" model).
    short_seconds:
        Locates faster than this are considered "near the track ends",
        where the paper reports the model is least accurate.
    bias_seconds:
        Systematic extra time the real mechanism spends on short
        locates (settle time the model does not capture).
    noise_seconds:
        Amplitude of deterministic per-pair noise (uniform in
        ``[-noise, +noise]``), applied to *all* locates.  Deterministic
        so that repeated executions of a schedule measure identically,
        like re-running a tape.
    """

    def __init__(
        self,
        base: LocateTimeModel,
        short_seconds: float = 30.0,
        bias_seconds: float = 0.45,
        noise_seconds: float = 0.35,
        seed: int = 0,
    ) -> None:
        super().__init__(base)
        self.short_seconds = float(short_seconds)
        self.bias_seconds = float(bias_seconds)
        self.noise_seconds = float(noise_seconds)
        self.seed = int(seed)

    def _pair_noise(self, sources, destinations) -> np.ndarray:
        """Deterministic pseudo-random value in [-1, 1] per (src, dst)."""
        mix = (
            sources.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
            ^ destinations.astype(np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)
            ^ np.uint64(self.seed * 0x165667B1 + 0x27D4EB2F)
        )
        mix ^= mix >> np.uint64(33)
        mix *= np.uint64(0xFF51AFD7ED558CCD)
        mix ^= mix >> np.uint64(33)
        unit = mix.astype(np.float64) / float(2**64)
        return 2.0 * unit - 1.0

    def _transform(self, sources, destinations, times) -> np.ndarray:
        noise = self.noise_seconds * self._pair_noise(
            np.broadcast_to(sources, np.shape(times)),
            np.broadcast_to(destinations, np.shape(times)),
        )
        bias = np.where(times < self.short_seconds, self.bias_seconds, 0.0)
        return np.maximum(0.0, times + bias + noise)
