"""Locate-time modelling for the DLT4000.

Public surface::

    from repro.model import (
        LocateTimeModel, LocateCase, classify,
        rewind_time, max_rewind_time,
        EvenOddPerturbation, ShortLocateDeviation,
        schedule_distance_matrix, out_positions,
        LinearizedModel,
    )
"""

from repro.model.cases import LocateCase, classify
from repro.model.distance_matrix import (
    out_positions,
    schedule_distance_matrix,
)
from repro.model.linearize import LinearizedModel
from repro.model.locate import LocateTimeModel
from repro.model.perturb import (
    EvenOddPerturbation,
    ModelWrapper,
    ShortLocateDeviation,
)
from repro.model.rewind import max_rewind_time, rewind_time

__all__ = [
    "EvenOddPerturbation",
    "LinearizedModel",
    "LocateCase",
    "LocateTimeModel",
    "ModelWrapper",
    "ShortLocateDeviation",
    "classify",
    "max_rewind_time",
    "out_positions",
    "rewind_time",
    "schedule_distance_matrix",
]
