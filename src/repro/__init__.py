"""repro — Random I/O scheduling for serpentine tertiary storage.

A from-scratch reproduction of Hillyer & Silberschatz, *Random I/O
Scheduling in Online Tertiary Storage Systems* (SIGMOD 1996): the
DLT4000 locate-time model, the eight batch schedulers (READ, FIFO, OPT,
SORT, SLTF, SCAN, WEAVE, LOSS), a simulated drive and robotic library,
and the full experiment harness that regenerates every figure and table
of the paper's evaluation.

Quickstart::

    from repro import (
        generate_tape, LocateTimeModel, LossScheduler,
        SimulatedDrive, execute_schedule,
    )

    tape = generate_tape(seed=7)
    model = LocateTimeModel(tape)
    batch = [123_456, 42, 599_999, 310_000]
    schedule = LossScheduler().schedule(model, origin=0, requests=batch)
    drive = SimulatedDrive(model)
    result = execute_schedule(drive, schedule)
    print(schedule.algorithm, result.total_seconds)
"""

from repro import api
from repro._version import __version__
from repro.cache import (
    AdmissionPolicy,
    AlwaysAdmit,
    CachedLibrarySystem,
    CachedTertiaryStorageSystem,
    CostThresholdAdmission,
    EvictionPolicy,
    FIFOPolicy,
    FrequencyThresholdAdmission,
    GDSFPolicy,
    LRUPolicy,
    SegmentCache,
)
from repro.drive import (
    SimulatedDrive,
    ground_truth_drive,
    ground_truth_model,
)
from repro.exceptions import (
    BatchTooLarge,
    CacheError,
    DriveError,
    EmptyBatchError,
    GeometryError,
    MetricsError,
    NoSamplesError,
    ReproError,
    SchedulingError,
    SegmentOutOfRange,
    TraceError,
)
from repro.obs import (
    EventBus,
    MetricsRegistry,
    TraceRecorder,
    TraceSummary,
    bind_standard_metrics,
    summarize_events,
)
from repro.library import LibraryRequest, MultiDriveSystem
from repro.online import (
    BatchPolicy,
    CacheStats,
    DeadlineBatchPolicy,
    ResponseStats,
    TertiaryStorageSystem,
)
from repro.serve import (
    Gateway,
    ServeConfig,
    ServeReport,
    ServeRequest,
    TenantConfig,
    TenantLoadSpec,
    TenantStats,
    zipf_serve_stream,
)
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
)
from repro.geometry import (
    TapeGeometry,
    calibrate_key_points,
    generate_tape,
    geometry_from_key_points,
    make_tape_pair,
    tiny_tape,
)
from repro.model import (
    EvenOddPerturbation,
    LocateCase,
    LocateTimeModel,
    ShortLocateDeviation,
    classify,
    rewind_time,
)
from repro.scheduling import (
    AutoScheduler,
    FifoScheduler,
    LossScheduler,
    OptScheduler,
    ReadEntireTapeScheduler,
    Request,
    ScanScheduler,
    Schedule,
    Scheduler,
    SltfScheduler,
    SortScheduler,
    WeaveScheduler,
    estimate_schedule_seconds,
    execute_schedule,
    get_scheduler,
    scheduler_names,
)

__all__ = [
    "AdmissionPolicy",
    "AlwaysAdmit",
    "AutoScheduler",
    "BatchPolicy",
    "BatchTooLarge",
    "CacheError",
    "CacheStats",
    "CachedLibrarySystem",
    "CachedTertiaryStorageSystem",
    "CostThresholdAdmission",
    "DeadlineBatchPolicy",
    "DriveError",
    "EmptyBatchError",
    "EvenOddPerturbation",
    "EventBus",
    "EvictionPolicy",
    "FIFOPolicy",
    "FaultInjector",
    "FaultPlan",
    "FifoScheduler",
    "FrequencyThresholdAdmission",
    "GDSFPolicy",
    "Gateway",
    "GeometryError",
    "LRUPolicy",
    "LibraryRequest",
    "LocateCase",
    "LocateTimeModel",
    "LossScheduler",
    "MetricsError",
    "MetricsRegistry",
    "MultiDriveSystem",
    "NoSamplesError",
    "OptScheduler",
    "ReadEntireTapeScheduler",
    "ReproError",
    "Request",
    "ResilienceConfig",
    "ResponseStats",
    "RetryPolicy",
    "ScanScheduler",
    "Schedule",
    "Scheduler",
    "SchedulingError",
    "SegmentCache",
    "SegmentOutOfRange",
    "ServeConfig",
    "ServeReport",
    "ServeRequest",
    "ShortLocateDeviation",
    "SimulatedDrive",
    "SltfScheduler",
    "SortScheduler",
    "TapeGeometry",
    "TenantConfig",
    "TenantLoadSpec",
    "TenantStats",
    "TertiaryStorageSystem",
    "TraceError",
    "TraceRecorder",
    "TraceSummary",
    "WeaveScheduler",
    "__version__",
    "api",
    "bind_standard_metrics",
    "calibrate_key_points",
    "classify",
    "estimate_schedule_seconds",
    "execute_schedule",
    "generate_tape",
    "geometry_from_key_points",
    "get_scheduler",
    "ground_truth_drive",
    "ground_truth_model",
    "make_tape_pair",
    "rewind_time",
    "scheduler_names",
    "summarize_events",
    "tiny_tape",
    "zipf_serve_stream",
]
