"""Online batching: the throughput / response-time trade-off.

The paper's premise is an *online* tertiary store: requests trickle in,
get batched, and each batch is scheduled before execution.  Bigger
batches schedule better (lower cost per I/O) but make early requests
wait.  This example runs a Poisson request stream through the
:class:`~repro.online.TertiaryStorageSystem` at several batching
policies and prints the trade-off.

Run with::

    python examples/online_batching.py
"""

from __future__ import annotations

from repro import generate_tape
from repro.online import BatchPolicy, TertiaryStorageSystem
from repro.workload import PoissonArrivals

#: One simulated day of arrivals.
HORIZON_SECONDS = 24 * 3600.0

#: Mean request rate: comfortably above the unscheduled capability
#: (~50/hour) and below the well-scheduled ceiling.
RATE_PER_HOUR = 110.0


def main() -> None:
    tape = generate_tape(seed=5)
    requests = PoissonArrivals(
        rate_per_hour=RATE_PER_HOUR,
        total_segments=tape.total_segments,
        seed=5,
    ).batch(HORIZON_SECONDS)
    print(f"{len(requests)} requests over {HORIZON_SECONDS / 3600:.0f} h "
          f"({RATE_PER_HOUR:.0f}/hour) against {tape.label}\n")

    print(f"{'batch policy':<24} {'mean resp':>10} {'p95 resp':>10} "
          f"{'busy':>7} {'batches':>8}")
    for max_batch in (16, 48, 96, 192):
        policy = BatchPolicy(max_batch=max_batch, flush_when_idle=True)
        system = TertiaryStorageSystem(geometry=tape, policy=policy)
        stats = system.run(requests)
        busy = sum(b.execution_seconds for b in system.batches)
        span = max(
            HORIZON_SECONDS,
            max(
                b.start_seconds + b.execution_seconds
                for b in system.batches
            ),
        )
        print(
            f"max_batch={max_batch:<14} "
            f"{stats.mean_seconds / 60:>8.1f} m "
            f"{stats.percentile(95) / 60:>8.1f} m "
            f"{100 * busy / span:>6.1f}% "
            f"{len(system.batches):>8}"
        )

    print(f"""
At {RATE_PER_HOUR:.0f} requests/hour the drive is overloaded without
good scheduling: capping batches at 16 keeps the per-I/O cost near the
small-batch end of Figure 4 and the queue never drains.  Larger batch
caps let LOSS amortize positioning across more requests - the same
drive becomes stable with minutes of response time.  That capacity gain
is the paper's Figures 4/5 result in online form.""")


if __name__ == "__main__":
    main()
