"""Striped tape arrays: parallelism on top of scheduling.

The paper's related work cites striped tape organizations [DK93,
GMW95] as the other lever on tape performance.  This example stripes a
logical volume across 1, 2, 4, and 8 drives and services the same
random batch on each configuration, showing

* the makespan drop from parallel drives, and
* the *diminishing return*: each drive sees a smaller sub-batch, and
  smaller batches schedule worse (the Figure 4 effect), so K drives
  buy less than a K-fold speedup.

Run with::

    python examples/striped_array.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_tape
from repro.online import Cartridge, StripedTapeArray

BATCH_SIZE = 256
SEED = 3


def main() -> None:
    tapes = [
        generate_tape(seed=SEED * 10 + i, total_segments=155_514)
        for i in range(8)
    ]
    rng = np.random.default_rng(SEED)

    print(f"servicing {BATCH_SIZE} random reads on striped arrays\n")
    print(f"{'drives':>6} {'makespan':>10} {'speedup':>8} "
          f"{'parallel eff.':>14} {'per-drive batch':>16}")

    baseline = None
    for drives in (1, 2, 4, 8):
        array = StripedTapeArray(
            [
                Cartridge(f"vol{i}", tapes[i])
                for i in range(drives)
            ],
            stripe_unit=1,
        )
        batch = rng.choice(
            array.logical_total, BATCH_SIZE, replace=False
        )
        result = array.service_batch(batch)
        if baseline is None:
            baseline = result.makespan_seconds
        speedup = baseline / result.makespan_seconds
        mean_batch = BATCH_SIZE / drives
        print(
            f"{drives:>6} {result.makespan_seconds:>8.0f} s "
            f"{speedup:>7.2f}x {result.parallel_efficiency:>13.0%} "
            f"{mean_batch:>15.0f}"
        )

    print("""
Speedup lags the drive count: splitting the batch K ways leaves each
drive with a smaller batch, and the per-request positioning cost rises
as batches shrink (Figure 4).  Scheduling and striping are complements,
not substitutes.""")


if __name__ == "__main__":
    main()
