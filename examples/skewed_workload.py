"""Skewed workloads: does the LOSS recommendation survive hot spots?

The paper's recommendation (OPT <= 10, LOSS <= 1536, then READ) is
stated "for uniformly randomly distributed requests".  Real database
workloads skew.  This example draws Zipf-distributed batches over a
scattered hot set and compares the algorithms against the uniform
baseline: clustering makes *every* scheduler faster (requests coalesce
into fewer sections), shrinks LOSS's edge over SLTF, and pushes the
READ crossover far beyond 1536 because a skewed batch touches far
fewer sections than a uniform one of equal size.

Run with::

    python examples/skewed_workload.py
"""

from __future__ import annotations


from repro import LocateTimeModel, generate_tape, get_scheduler
from repro.workload import UniformWorkload, ZipfWorkload

BATCH = 192
SEED = 19
ALGORITHMS = ("FIFO", "SORT", "SLTF", "LOSS")


def evaluate(model, batch):
    results = {}
    for name in ALGORITHMS:
        schedule = get_scheduler(name).schedule(model, 0, batch)
        results[name] = schedule.estimated_seconds / len(batch)
    return results


def main() -> None:
    tape = generate_tape(seed=SEED)
    model = LocateTimeModel(tape)

    uniform = UniformWorkload(
        total_segments=tape.total_segments, seed=SEED
    ).sample_batch(BATCH)

    print(f"{BATCH}-request batches on {tape.label}; "
          "seconds per locate\n")
    header = f"{'workload':<22}" + "".join(
        f"{name:>8}" for name in ALGORITHMS
    )
    print(header)

    rows = [("uniform", uniform.tolist())]
    for alpha in (0.8, 1.1, 1.4):
        zipf = ZipfWorkload(
            total_segments=tape.total_segments,
            alpha=alpha,
            universe=5_000,
            placement="clustered",
            run_length=128,
            seed=SEED,
        ).sample_batch(BATCH)
        rows.append((f"zipf alpha={alpha}", zipf.tolist()))

    for label, batch in rows:
        results = evaluate(model, batch)
        cells = "".join(
            f"{results[name]:>8.1f}" for name in ALGORITHMS
        )
        print(f"{label:<22}{cells}")

    print("""
Skew concentrates requests into fewer sections, so positioning cost
falls across the board and the greedy schedulers close most of the gap
to LOSS -- but LOSS never loses, so the paper's policy remains safe
under skew.""")


if __name__ == "__main__":
    main()
