"""Quickstart: schedule a batch of random reads on a serpentine tape.

Generates a synthetic DLT4000 cartridge, builds its locate-time model,
schedules one batch of random requests with every algorithm from the
paper, and executes the winners on a simulated drive.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LocateTimeModel,
    SimulatedDrive,
    execute_schedule,
    generate_tape,
    get_scheduler,
)

BATCH_SIZE = 48
SEED = 7


def main() -> None:
    # A cartridge is characterized once (here: generated synthetically;
    # on real hardware: calibrated via repro.geometry.calibration).
    tape = generate_tape(seed=SEED)
    model = LocateTimeModel(tape)
    print(f"cartridge {tape.label}: {tape.total_segments} segments, "
          f"{tape.num_tracks} tracks")

    # A batch of uniformly random reads, head parked at segment 0.
    rng = np.random.default_rng(SEED)
    batch = rng.choice(
        tape.total_segments, size=BATCH_SIZE, replace=False
    ).tolist()

    print(f"\nscheduling {BATCH_SIZE} random reads:")
    print(f"{'algorithm':<10} {'est. total':>12} {'s/request':>10}")
    for name in ("FIFO", "SORT", "SCAN", "WEAVE", "SLTF", "LOSS"):
        schedule = get_scheduler(name).schedule(model, 0, batch)
        print(
            f"{name:<10} {schedule.estimated_seconds:>10.1f} s "
            f"{schedule.estimated_seconds / BATCH_SIZE:>9.1f}"
        )

    # Execute the LOSS schedule on a simulated drive and confirm the
    # estimate matches the measurement (same model on both sides).
    schedule = get_scheduler("LOSS").schedule(model, 0, batch)
    drive = SimulatedDrive(model, record_events=True)
    result = execute_schedule(drive, schedule)
    print(f"\nLOSS executed: {result.total_seconds:.1f} s measured "
          f"vs {schedule.estimated_seconds:.1f} s estimated")
    print(f"  positioning {result.locate_seconds:.1f} s, "
          f"transfer {result.transfer_seconds:.1f} s, "
          f"{len(drive.events)} drive events")


if __name__ == "__main__":
    main()
