"""Planning an operating batch size from the Figure 4 data.

An online tertiary store has one real knob: how many requests to
accumulate before scheduling a batch.  This example measures the LOSS
per-request curve (a small Figure 4 run), then uses the batching
planner to answer two operator questions for several arrival rates:

1. what is the *smallest* batch size that keeps up (stability)?
2. what batch size minimizes the expected response time?

It then validates the recommendation by simulating the online system
at the recommended and at a naive batch size.

Run with::

    python examples/batch_size_planning.py
"""

from __future__ import annotations

from repro.analysis import (
    PerLocateCurve,
    min_stable_batch,
    recommend_batch,
)
from repro.experiments import ExperimentConfig, run_per_locate
from repro.geometry import generate_tape
from repro.online import BatchPolicy, TertiaryStorageSystem
from repro.workload import PoissonArrivals

RATES = (30.0, 80.0, 150.0, 250.0)


def main() -> None:
    print("measuring the LOSS per-request curve (small Figure 4 run)…")
    result = run_per_locate(
        ExperimentConfig(
            lengths=(1, 4, 16, 64, 192, 512), scale="quick"
        ),
        origin_at_start=False,
        algorithms=("LOSS",),
    )
    curve = PerLocateCurve.from_per_locate_result(result, "LOSS")
    for length in curve.lengths:
        print(f"  batch {length:>4}: {curve.at(length):5.1f} s/request "
              f"(ceiling {curve.capacity_per_hour(length):5.0f}/h)")

    print(f"\n{'rate/h':>8} {'min stable batch':>17} "
          f"{'recommended':>12} {'est. response':>14}")
    for rate in RATES:
        floor = min_stable_batch(curve, rate)
        pick = recommend_batch(curve, rate)
        if pick is None:
            print(f"{rate:>8.0f} {'-':>17} {'overloaded':>12}")
            continue
        batch, estimate = pick
        print(f"{rate:>8.0f} {floor!s:>17} {batch:>12} "
              f"{estimate / 60:>11.1f} m")

    # Validate the 150/hour recommendation against the simulator.
    rate = 150.0
    batch, _ = recommend_batch(curve, rate)
    tape = generate_tape(seed=8)
    requests = PoissonArrivals(
        rate_per_hour=rate, total_segments=tape.total_segments, seed=8
    ).batch(12 * 3600.0)
    print(f"\nsimulating {rate:.0f}/hour for 12 h:")
    for max_batch in (8, batch):
        system = TertiaryStorageSystem(
            geometry=tape, policy=BatchPolicy(max_batch=max_batch)
        )
        stats = system.run(requests)
        label = "recommended" if max_batch == batch else "naive"
        print(f"  max_batch={max_batch:<4} ({label:<11}) "
              f"mean response {stats.mean_seconds / 60:6.1f} m, "
              f"p95 {stats.percentile(95) / 60:6.1f} m")


if __name__ == "__main__":
    main()
