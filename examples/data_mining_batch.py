"""Data-mining scenario: thousands of point queries against tape.

The paper's introduction motivates tape for data-mining workloads where
"tens of thousands of queries are aggregated" against a tape-resident
relation.  This example plays that scenario end to end on one
cartridge:

1. a relation of fixed-size records is mapped onto tape segments;
2. an aggregated query batch touches a random subset of records;
3. the batch is serviced three ways — unscheduled (FIFO), scheduled
   (the paper's AUTO policy: OPT / LOSS / READ by batch size), and by
   brute-force whole-tape READ — and the retrieval rates are compared.

Run with::

    python examples/data_mining_batch.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AutoScheduler,
    FifoScheduler,
    LocateTimeModel,
    ReadEntireTapeScheduler,
    generate_tape,
)
from repro.analysis.rates import ios_per_hour

#: Records per tape segment (a 32 KB segment holds 128 records of 256 B).
RECORDS_PER_SEGMENT = 128

#: Entry-point seed of this example (tape and query stream both derive
#: from it, so reruns print identical tables).
EXAMPLE_SEED = 11


def segments_for_records(
    record_ids: np.ndarray,
    total_segments: int,
    rng: np.random.Generator,
) -> list[int]:
    """Map record ids onto the tape segments that hold them.

    Deduplicates (queries hitting one segment share a read) and then
    shuffles: an aggregated batch arrives in no particular order, which
    is exactly what the FIFO baseline must be charged for.
    """
    segments = np.unique(record_ids // RECORDS_PER_SEGMENT)
    segments = segments[segments < total_segments]
    rng.shuffle(segments)
    return segments.tolist()


def main() -> None:
    tape = generate_tape(seed=11)
    model = LocateTimeModel(tape)
    total_records = tape.total_segments * RECORDS_PER_SEGMENT
    print(f"relation: {total_records:,} records on {tape.label}")

    rng = np.random.default_rng(EXAMPLE_SEED)
    schedulers = {
        "FIFO (unscheduled)": FifoScheduler(),
        "AUTO (paper policy)": AutoScheduler(),
        "READ (whole tape)": ReadEntireTapeScheduler(),
    }

    for query_count in (8, 96, 1024, 4096):
        record_ids = rng.choice(total_records, size=query_count,
                                replace=False)
        batch = segments_for_records(record_ids, tape.total_segments, rng)
        print(f"\n{query_count} point queries -> "
              f"{len(batch)} distinct segments")
        for label, scheduler in schedulers.items():
            schedule = scheduler.schedule(model, 0, batch)
            rate = ios_per_hour(schedule.estimated_seconds, len(batch))
            hours = schedule.estimated_seconds / 3600.0
            print(f"  {label:<22} {hours:6.2f} h   "
                  f"{rate:7.0f} segments/hour   "
                  f"(chose {schedule.algorithm})")


if __name__ == "__main__":
    main()
