"""Characterizing a cartridge: key-point calibration end to end.

The locate-time model is parameterized by each cartridge's key points,
and Section 7 of the paper shows why that matters: scheduling with the
*wrong* tape's key points is disastrous (~20 % estimate error).  This
example plays the whole lifecycle:

1. a "factory" cartridge with unknown-to-us geometry is mounted;
2. the calibration procedure of [HS96] recovers its key points purely
   from locate-time measurements (the Figure 1 sweep + drop detection);
3. the recovered geometry drives a model whose schedule estimates are
   then validated against the drive;
4. for contrast, the same schedule is re-estimated with a different
   cartridge's key points.

Run with::

    python examples/tape_characterization.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LocateTimeModel,
    calibrate_key_points,
    estimate_schedule_seconds,
    execute_schedule,
    geometry_from_key_points,
    ground_truth_drive,
    make_tape_pair,
)
from repro.scheduling import LossScheduler

#: Entry-point seed for the post-calibration validation batch.
VALIDATION_SEED = 2


def main() -> None:
    # The cartridge in the drive (we pretend not to know its layout).
    mounted, other = make_tape_pair(seed=2)
    truth_model = LocateTimeModel(mounted)

    # --- calibration -----------------------------------------------------
    result = calibrate_key_points(
        truth_model.oracle(),
        total_segments=mounted.total_segments,
        num_tracks=mounted.num_tracks,
    )
    reference = mounted.all_key_points()
    print(f"calibrated {result.key_points.size} key points with "
          f"{result.probes:,} locate measurements; "
          f"max deviation from truth: {result.max_error(reference)} "
          f"segments")

    calibrated = geometry_from_key_points(
        result.key_points, mounted.total_segments, label="calibrated"
    )
    model = LocateTimeModel(calibrated)

    # --- validate scheduling with the calibrated model --------------------
    rng = np.random.default_rng(VALIDATION_SEED)
    batch = rng.choice(mounted.total_segments, size=96,
                       replace=False).tolist()
    schedule = LossScheduler().schedule(model, 0, batch)
    drive = ground_truth_drive(mounted)
    measured = execute_schedule(drive, schedule).total_seconds
    estimated = schedule.estimated_seconds
    print(f"\ncalibrated model:   estimate {estimated:8.1f} s,  "
          f"measured {measured:8.1f} s  "
          f"({100 * (estimated - measured) / measured:+.1f}%)")

    # --- contrast: the wrong cartridge's key points -----------------------
    wrong_model = LocateTimeModel(other)
    wrong_schedule = LossScheduler().schedule(wrong_model, 0, batch)
    wrong_drive = ground_truth_drive(mounted)
    wrong_measured = execute_schedule(
        wrong_drive, wrong_schedule
    ).total_seconds
    wrong_estimate = estimate_schedule_seconds(wrong_model, wrong_schedule)
    print(f"wrong key points:   estimate {wrong_estimate:8.1f} s,  "
          f"measured {wrong_measured:8.1f} s  "
          f"({100 * (wrong_estimate - wrong_measured) / wrong_measured:+.1f}%)"
          )
    print("\nEvery cartridge needs its own characterization - the "
          "paper's Figure 9 finding.")


if __name__ == "__main__":
    main()
