"""End-to-end pipelines across subsystem boundaries."""

import numpy as np
import pytest

from repro import (
    LocateTimeModel,
    calibrate_key_points,
    estimate_schedule_seconds,
    execute_schedule,
    generate_tape,
    geometry_from_key_points,
    ground_truth_drive,
    ground_truth_model,
)
from repro.scheduling import AutoScheduler, LossScheduler


class TestCharacterizeScheduleValidate:
    """The full lifecycle the paper describes: characterize the
    cartridge, schedule with its model, validate against the drive."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        tape = generate_tape(seed=31)
        truth = ground_truth_model(tape, seed=2)
        calibration = calibrate_key_points(
            truth.oracle(), tape.total_segments, tape.num_tracks,
            threshold=2.0,
        )
        calibrated = geometry_from_key_points(
            calibration.key_points, tape.total_segments
        )
        return tape, LocateTimeModel(calibrated)

    def test_calibration_recovers_geometry_through_deviations(
        self, pipeline
    ):
        tape, model = pipeline
        # The ground-truth drive adds noise/bias, yet every observable
        # key point still comes out within a couple of segments.
        assert (
            np.abs(
                model.geometry.all_key_points()[:, 2:]
                - tape.all_key_points()[:, 2:]
            ).max()
            <= 2
        )

    def test_estimates_track_measurements(self, pipeline):
        tape, model = pipeline
        rng = np.random.default_rng(0)
        scheduler = LossScheduler()
        for size in (16, 96):
            batch = rng.choice(
                tape.total_segments, size, replace=False
            ).tolist()
            schedule = scheduler.schedule(model, 0, batch)
            drive = ground_truth_drive(tape, seed=2)
            measured = execute_schedule(drive, schedule).total_seconds
            error = abs(
                schedule.estimated_seconds - measured
            ) / measured
            assert error < 0.03

    def test_scheduling_beats_fifo_on_real_drive(self, pipeline):
        tape, model = pipeline
        rng = np.random.default_rng(1)
        batch = rng.choice(tape.total_segments, 64, replace=False).tolist()

        loss_schedule = LossScheduler().schedule(model, 0, batch)
        loss_time = execute_schedule(
            ground_truth_drive(tape, seed=2), loss_schedule
        ).total_seconds

        from repro.scheduling import FifoScheduler

        fifo_schedule = FifoScheduler().schedule(model, 0, batch)
        fifo_time = execute_schedule(
            ground_truth_drive(tape, seed=2), fifo_schedule
        ).total_seconds
        assert loss_time < 0.6 * fifo_time


class TestAutoPolicyAcrossScales:
    def test_policy_picks_sensible_plans(self, full_model, rng):
        auto = AutoScheduler()
        total = full_model.geometry.total_segments
        small = rng.choice(total, 6, replace=False).tolist()
        medium = rng.choice(total, 60, replace=False).tolist()

        small_schedule = auto.schedule(full_model, 0, small)
        medium_schedule = auto.schedule(full_model, 0, medium)
        assert small_schedule.algorithm == "OPT"
        assert medium_schedule.algorithm == "LOSS"

        # The chosen plan is at least as good as the other policy arm.
        loss_small = LossScheduler().schedule(full_model, 0, small)
        assert (
            small_schedule.estimated_seconds
            <= loss_small.estimated_seconds + 1e-6
        )

    def test_estimator_is_consistent_across_models(self, full_tape,
                                                   full_model, rng):
        # Estimating the same schedule under the ground-truth model
        # differs from the ideal estimate only by the deviation scale.
        truth = ground_truth_model(full_tape)
        batch = rng.choice(
            full_tape.total_segments, 32, replace=False
        ).tolist()
        schedule = LossScheduler().schedule(full_model, 0, batch)
        ideal = schedule.estimated_seconds
        measured = estimate_schedule_seconds(truth, schedule)
        assert abs(ideal - measured) / measured < 0.05
