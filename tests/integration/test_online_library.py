"""Integration: online batching over a multi-cartridge library."""

import pytest

from repro.geometry import tiny_tape
from repro.online import (
    BatchPolicy,
    Cartridge,
    TapeLibrary,
    TertiaryStorageSystem,
)
from repro.scheduling import LossScheduler, Request
from repro.scheduling.executor import execute_schedule
from repro.workload import PoissonArrivals


class TestLibraryServiceLoop:
    def test_mount_schedule_execute_across_cartridges(self, rng):
        library = TapeLibrary(
            [
                Cartridge("vol1", tiny_tape(seed=1)),
                Cartridge("vol2", tiny_tape(seed=2)),
            ],
            exchange_seconds=30.0,
        )
        scheduler = LossScheduler()
        for label in ("vol1", "vol2", "vol1"):
            library.mount(label)
            cartridge = library.cartridge(label)
            batch = [
                Request(int(s))
                for s in rng.choice(
                    cartridge.geometry.total_segments, 12, replace=False
                )
            ]
            schedule = scheduler.schedule(
                cartridge.model, library.drive.position, batch
            )
            result = execute_schedule(library.drive, schedule)
            assert result.request_count == 12
        # Two exchanges + one remount of vol1; clock advanced past the
        # pure drive time.
        assert library.clock_seconds > 90.0

    def test_fresh_mounts_start_at_bot(self):
        library = TapeLibrary([Cartridge("v", tiny_tape(seed=3))])
        library.mount("v")
        library.drive.locate(100)
        library.unmount()
        library.mount("v")
        assert library.drive.position == 0


class TestSystemThroughputOrdering:
    @pytest.mark.parametrize("small,large", [(4, 32)])
    def test_bigger_batches_win_under_load(self, small, large):
        tape = tiny_tape(seed=9, tracks=6)
        # Heavy load relative to the tiny tape's service rate.
        requests = PoissonArrivals(
            rate_per_hour=2000.0,
            total_segments=tape.total_segments,
            seed=4,
        ).batch(3600.0)

        def span(max_batch):
            system = TertiaryStorageSystem(
                geometry=tape,
                policy=BatchPolicy(max_batch=max_batch),
            )
            system.run(requests)
            last = system.batches[-1]
            return last.start_seconds + last.execution_seconds

        assert span(large) < span(small)
