"""The repro.api facade's demotion shim for moved observability names."""

import warnings

import pytest

from repro import api, obs


class TestFacadeShim:
    @pytest.fixture()
    def fresh_facade(self, monkeypatch):
        """The facade with its warned-once memory cleared."""
        monkeypatch.setattr(api, "_warned", set())
        return api

    def test_every_moved_name_resolves_to_obs(self, fresh_facade):
        for name in fresh_facade._MOVED:
            with pytest.warns(DeprecationWarning, match="repro.obs"):
                resolved = getattr(fresh_facade, name)
            assert resolved is getattr(obs, name)

    def test_warns_exactly_once_per_name(self, fresh_facade):
        with pytest.warns(DeprecationWarning) as caught:
            fresh_facade.Subscription
        assert len(caught) == 1
        # Second access: silent, even under -W error.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert fresh_facade.Subscription is obs.Subscription

    def test_moved_names_are_not_in_all(self):
        for name in api._MOVED:
            assert name not in api.__all__

    def test_dir_advertises_moved_names(self):
        listed = dir(api)
        for name in api._MOVED:
            assert name in listed

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            api.NoSuchName

    def test_blessed_names_stay_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in api.__all__:
                getattr(api, name)
