"""Corner paths across subsystems that the mainline tests skirt."""

import numpy as np
import pytest

from repro.scheduling import (
    WeaveScheduler,
    full_read_seconds,
    sparse_loss_order,
)


class TestWeaveFallback:
    def test_pattern_gap_falls_back_to_nearest(self, full_model):
        # From section 0 of a forward track, the published weave
        # pattern never names (CT, 0) — same physical section in a
        # co-directional track.  The scheduler must still service it
        # via the nearest-section fallback.
        geo = full_model.geometry
        origin = geo.segment_at(0, 0, 0)
        only_request = geo.segment_at(2, 0, 3)
        schedule = WeaveScheduler().schedule(
            full_model, origin, [only_request]
        )
        assert [r.segment for r in schedule] == [only_request]

    def test_mixed_gap_and_pattern_requests(self, full_model):
        geo = full_model.geometry
        origin = geo.segment_at(0, 0, 0)
        gap_request = geo.segment_at(2, 0, 3)       # pattern gap
        easy_request = geo.segment_at(0, 1, 5)      # first weave entry
        schedule = WeaveScheduler().schedule(
            full_model, origin, [gap_request, easy_request]
        )
        assert sorted(r.segment for r in schedule) == sorted(
            [gap_request, easy_request]
        )
        # The in-pattern neighbour is taken before the fallback one.
        assert schedule.requests[0].segment == easy_request


class TestSparseLossWideningAndScale:
    def test_tiny_out_degree_still_completes(self, rng):
        # Forces rounds where 2-edge sparsification may strand
        # fragments; the widening loop must still converge.
        n = 60
        matrix = rng.uniform(1.0, 100.0, size=(n + 1, n))
        order = sparse_loss_order(matrix, out_degree_factor=0.01)
        assert sorted(order) == list(range(n))

    def test_larger_than_dense_fallback(self, rng):
        n = 120
        matrix = rng.uniform(1.0, 100.0, size=(n + 1, n))
        order = sparse_loss_order(matrix)
        assert sorted(order) == list(range(n))


class TestFullReadParity:
    def test_model_and_geometry_paths_agree_on_default_profile(
        self, tiny, tiny_model
    ):
        assert full_read_seconds(tiny_model) == pytest.approx(
            full_read_seconds(tiny)
        )


class TestWearCustomRating:
    def test_exabyte_budget_depletes_fast(self):
        from repro.drive import EXABYTE_RATED_PASSES, WearMeter
        from repro.geometry.tape import TAPE_PHYS_LENGTH

        meter = WearMeter(rated_passes=EXABYTE_RATED_PASSES)
        meter.add_travel(150 * TAPE_PHYS_LENGTH)
        assert meter.life_used_fraction == pytest.approx(0.1)
        assert meter.passes_remaining == pytest.approx(1350.0)


class TestLibraryWearIntegration:
    def test_wear_tracked_across_mounts(self):
        from repro.drive import SimulatedDrive, WearMeter
        from repro.geometry import tiny_tape
        from repro.model import LocateTimeModel

        tape = tiny_tape(seed=3)
        model = LocateTimeModel(tape)
        meter = WearMeter()
        # A segment at the physical far end of the tape.
        deep = tape.track_layout(0).last_segment
        # Two "mount sessions" sharing one cartridge's meter: each
        # travels out (~1 tape length) and rewinds (~1 tape length).
        for _ in range(2):
            drive = SimulatedDrive(model, wear_meter=meter)
            drive.locate(deep)
            drive.rewind()
        assert meter.passes == pytest.approx(4.0, abs=0.5)


class TestReprs:
    def test_debug_reprs_do_not_crash(self, tiny, tiny_model):
        from repro.scheduling import LossScheduler

        assert "TapeGeometry" in repr(tiny)
        assert "LossScheduler" in repr(LossScheduler())


class TestNumpyIntegerInputs:
    def test_schedulers_accept_numpy_ints(self, tiny_model, rng):
        from repro.scheduling import get_scheduler

        batch = rng.choice(
            tiny_model.geometry.total_segments, 6, replace=False
        )  # numpy array, not a list
        for name in ("SORT", "LOSS", "OPT"):
            schedule = get_scheduler(name).schedule(
                tiny_model, np.int64(0), batch
            )
            assert len(schedule) == 6
