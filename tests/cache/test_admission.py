"""Admission control."""

import pytest

from repro.cache import (
    AlwaysAdmit,
    CostThresholdAdmission,
    FrequencyThresholdAdmission,
    get_admission,
)


class TestRegistry:
    @pytest.mark.parametrize("name", ["always", "frequency", "cost"])
    def test_get_admission(self, name):
        assert get_admission(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            get_admission("tinylfu")


class TestAlwaysAdmit:
    def test_admits_everything(self):
        policy = AlwaysAdmit()
        assert policy.admit(1, 0.0)
        assert policy.admit(2, 180.0)


class TestFrequencyThreshold:
    def test_second_access_admits(self):
        policy = FrequencyThresholdAdmission(min_accesses=2)
        assert policy.admit(7, 10.0) is False
        assert policy.admit(7, 10.0) is True

    def test_one_hit_wonders_never_admitted(self):
        policy = FrequencyThresholdAdmission(min_accesses=2)
        assert not any(policy.admit(key, 10.0) for key in range(100))

    def test_threshold_one_is_always_admit(self):
        policy = FrequencyThresholdAdmission(min_accesses=1)
        assert policy.admit(5, 0.0) is True

    def test_tracking_table_is_bounded(self):
        policy = FrequencyThresholdAdmission(
            min_accesses=2, max_tracked=4
        )
        for key in range(10):
            policy.admit(key, 1.0)
        assert len(policy._counts) <= 4
        # Key 0's count was aged out, so it starts over.
        assert policy.admit(0, 1.0) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyThresholdAdmission(min_accesses=0)
        with pytest.raises(ValueError):
            FrequencyThresholdAdmission(max_tracked=0)


class TestCostThreshold:
    def test_threshold(self):
        policy = CostThresholdAdmission(min_cost_seconds=5.0)
        assert policy.admit(1, 4.9) is False
        assert policy.admit(1, 5.0) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            CostThresholdAdmission(min_cost_seconds=-1.0)
