"""Eviction policies: FIFO, LRU, and tape-cost-aware GDSF."""

import pytest

from repro.cache import (
    FIFOPolicy,
    GDSFPolicy,
    LRUPolicy,
    SegmentCache,
    get_policy,
)


class TestRegistry:
    @pytest.mark.parametrize("name", ["fifo", "lru", "gdsf"])
    def test_get_policy(self, name):
        assert get_policy(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            get_policy("arc")


class TestFIFO:
    def test_insertion_order_ignores_hits(self):
        policy = FIFOPolicy()
        for key in (1, 2, 3):
            policy.on_insert(key, 1.0)
        policy.on_hit(1)
        assert policy.pop_victim() == 1
        assert policy.pop_victim() == 2


class TestLRU:
    def test_hit_promotes(self):
        policy = LRUPolicy()
        for key in (1, 2, 3):
            policy.on_insert(key, 1.0)
        policy.on_hit(1)
        assert policy.pop_victim() == 2
        assert policy.pop_victim() == 3
        assert policy.pop_victim() == 1


class TestGDSF:
    def test_cheap_segment_evicted_before_expensive(self):
        policy = GDSFPolicy()
        policy.on_insert(1, 5.0)    # cheap re-fetch
        policy.on_insert(2, 150.0)  # far end of tape
        assert policy.pop_victim() == 1

    def test_frequency_outweighs_moderate_cost_gap(self):
        policy = GDSFPolicy()
        policy.on_insert(1, 50.0)
        policy.on_insert(2, 60.0)
        for _ in range(3):
            policy.on_hit(1)  # priority 4 * 50 = 200 > 60
        assert policy.pop_victim() == 2

    def test_clock_inflation_ages_out_stale_entries(self):
        policy = GDSFPolicy()
        policy.on_insert(1, 100.0)          # priority 100
        for victim in range(2, 11):
            policy.on_insert(victim, 10.0)  # priority clock + 10
            assert policy.pop_victim() == victim
        # The clock reached 90, so a fresh cheap entry (priority
        # 90 + 10.5) now outranks the old expensive one.
        policy.on_insert(99, 10.5)
        assert policy.pop_victim() == 1

    def test_stale_heap_entries_skipped(self):
        policy = GDSFPolicy()
        policy.on_insert(1, 10.0)
        policy.on_insert(2, 20.0)
        policy.on_hit(1)
        policy.on_hit(1)  # several stale heap records for key 1
        assert policy.pop_victim() == 2

    def test_pop_empty_raises(self):
        with pytest.raises(LookupError):
            GDSFPolicy().pop_victim()


class TestPoliciesInStore:
    @pytest.mark.parametrize("name", ["fifo", "lru", "gdsf"])
    def test_store_respects_capacity(self, name):
        cache = SegmentCache(8, policy=get_policy(name))
        for segment in range(50):
            cache.admit(segment, cost=float(segment % 7) + 1.0)
            cache.lookup(segment % 13)
            assert len(cache) <= 8

    def test_gdsf_keeps_expensive_hot_set(self):
        # Expensive far-end segments hold their slots; a stream of
        # cheap one-hit segments churns through the remaining slot.
        cache = SegmentCache(3, policy=GDSFPolicy())
        cache.admit(1, cost=150.0)
        cache.admit(2, cost=150.0)
        for cheap in range(10, 20):
            cache.admit(cheap, cost=1.0)
            cache.lookup(1)
            cache.lookup(2)
        assert 1 in cache and 2 in cache
