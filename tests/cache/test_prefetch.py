"""Opportunistic read-through prefetch."""

from repro.cache import SegmentCache, prefetch_candidates
from repro.cache.prefetch import opportunistic_prefetch
from repro.scheduling import Request


class TestPrefetchCandidates:
    def test_empty_batch(self):
        assert prefetch_candidates([]) == []

    def test_gap_within_group_is_prefetched(self):
        requests = [Request(100), Request(104)]
        assert prefetch_candidates(requests, threshold=10) == [
            101, 102, 103,
        ]

    def test_requests_beyond_threshold_contribute_nothing(self):
        requests = [Request(100), Request(5_000)]
        assert prefetch_candidates(requests, threshold=10) == []

    def test_covered_segments_excluded(self):
        # length-3 read covers 100..102; only 103 is a gap.
        requests = [Request(100, length=3), Request(104)]
        assert prefetch_candidates(requests, threshold=10) == [103]

    def test_limit_caps_output(self):
        requests = [Request(0), Request(100)]
        out = prefetch_candidates(requests, threshold=200, limit=5)
        assert len(out) == 5

    def test_narrow_gaps_first(self):
        requests = [
            Request(0), Request(50),         # wide-gap group
            Request(1_000), Request(1_002),  # narrow-gap group
        ]
        out = prefetch_candidates(requests, threshold=60, limit=1)
        assert out == [1_001]

    def test_singleton_groups_ignored(self):
        requests = [Request(0), Request(10_000), Request(50_000)]
        assert prefetch_candidates(requests, threshold=100) == []


class TestOpportunisticPrefetch:
    def test_stages_gaps_with_model_costs(self, tiny_model):
        cache = SegmentCache(32)
        staged = opportunistic_prefetch(
            cache, tiny_model, 0,
            [Request(10), Request(14)], threshold=20,
        )
        assert staged == 3
        assert all(seg in cache for seg in (11, 12, 13))
        assert cache.stats.prefetch_insertions == 3

    def test_never_evicts_resident_data(self, tiny_model):
        cache = SegmentCache(2)
        cache.admit(200)
        cache.admit(201)
        staged = opportunistic_prefetch(
            cache, tiny_model, 0,
            [Request(10), Request(14)], threshold=20,
        )
        assert staged == 0
        assert set(cache) == {200, 201}

    def test_no_candidates_is_noop(self, tiny_model):
        cache = SegmentCache(4)
        assert opportunistic_prefetch(
            cache, tiny_model, 0, [Request(10)]
        ) == 0
