"""The cached online system (HSM front-end)."""

import pytest

from repro.cache import (
    CachedTertiaryStorageSystem,
    GDSFPolicy,
    SegmentCache,
)
from repro.geometry import tiny_tape
from repro.online import BatchPolicy, TertiaryStorageSystem
from repro.workload import TimedRequest, ZipfArrivals, ZipfWorkload


@pytest.fixture()
def tape():
    return tiny_tape(seed=5)


def skewed_requests(tape, horizon_seconds=2 * 3600.0):
    workload = ZipfWorkload(
        total_segments=tape.total_segments,
        alpha=0.9,
        universe=80,
        seed=2,
    )
    return ZipfArrivals(
        rate_per_hour=300.0, workload=workload, seed=3
    ).batch(horizon_seconds)


class TestCachedSystem:
    def test_services_every_request(self, tape):
        requests = skewed_requests(tape)
        system = CachedTertiaryStorageSystem(
            geometry=tape,
            policy=BatchPolicy(max_batch=16),
            cache=SegmentCache(32),
        )
        stats = system.run(requests)
        assert stats.count == len(requests)
        assert system.cache_stats.lookups == len(requests)

    def test_hits_complete_at_arrival(self, tape):
        system = CachedTertiaryStorageSystem(
            geometry=tape, cache=SegmentCache(8)
        )
        system.cache.admit(42)
        stats = system.run([TimedRequest(1.0, 42)])
        assert system.cache_stats.hits == 1
        assert stats.mean_seconds == 0.0

    def test_hit_latency_charged(self, tape):
        system = CachedTertiaryStorageSystem(
            geometry=tape,
            cache=SegmentCache(8),
            hit_latency_seconds=0.25,
        )
        system.cache.admit(42)
        stats = system.run([TimedRequest(1.0, 42)])
        assert stats.mean_seconds == pytest.approx(0.25)

    def test_negative_hit_latency_rejected(self, tape):
        with pytest.raises(ValueError):
            CachedTertiaryStorageSystem(
                geometry=tape, hit_latency_seconds=-1.0
            )

    def test_misses_are_staged_for_reuse(self, tape):
        system = CachedTertiaryStorageSystem(
            geometry=tape, cache=SegmentCache(16)
        )
        system.run([TimedRequest(0.0, 7), TimedRequest(5000.0, 7)])
        assert system.cache_stats.misses == 1
        assert system.cache_stats.hits == 1

    def test_beats_uncached_baseline_on_skewed_stream(self, tape):
        requests = skewed_requests(tape)
        baseline = TertiaryStorageSystem(
            geometry=tape, policy=BatchPolicy(max_batch=16)
        )
        base_stats = baseline.run(list(requests))
        cached = CachedTertiaryStorageSystem(
            geometry=tape,
            policy=BatchPolicy(max_batch=16),
            cache=SegmentCache(16, policy=GDSFPolicy()),
        )
        cached_stats = cached.run(list(requests))
        assert cached.cache_stats.hits > 0
        assert cached_stats.mean_seconds < base_stats.mean_seconds

    def test_prefetch_toggle(self, tape):
        requests = skewed_requests(tape, horizon_seconds=3600.0)
        with_prefetch = CachedTertiaryStorageSystem(
            geometry=tape,
            policy=BatchPolicy(max_batch=16),
            cache=SegmentCache(64),
            prefetch=True,
            prefetch_threshold=50,
        )
        with_prefetch.run(list(requests))
        without = CachedTertiaryStorageSystem(
            geometry=tape,
            policy=BatchPolicy(max_batch=16),
            cache=SegmentCache(64),
            prefetch=False,
        )
        without.run(list(requests))
        assert without.cache_stats.prefetch_insertions == 0
        assert (
            with_prefetch.cache_stats.prefetch_insertions
            >= without.cache_stats.prefetch_insertions
        )

    def test_multisegment_requests(self, tape):
        system = CachedTertiaryStorageSystem(
            geometry=tape, cache=SegmentCache(32)
        )
        system.run(
            [
                TimedRequest(0.0, 10, length=4),
                TimedRequest(5000.0, 10, length=4),
            ]
        )
        assert system.cache_stats.hits == 1
        assert system.cache_stats.hit_segments == 4

    def test_byte_accounting(self, tape):
        system = CachedTertiaryStorageSystem(
            geometry=tape, cache=SegmentCache(32)
        )
        system.run([TimedRequest(0.0, 3), TimedRequest(5000.0, 3)])
        stats = system.cache_stats
        assert stats.hit_bytes == 32 * 1024
        assert stats.miss_bytes == 32 * 1024
        assert stats.byte_hit_rate == pytest.approx(0.5)
