"""CachedLibrarySystem: the staging tier injected over the library."""

import pytest

from repro.cache import CachedLibrarySystem, SegmentCache
from repro.exceptions import CacheError, UnknownTape
from repro.geometry import tiny_tape
from repro.library import (
    Cartridge,
    LibraryRequest,
    MultiDriveSystem,
    poisson_library_stream,
)
from repro.obs import EventBus
from repro.serve import Gateway, ServeConfig, ServeRequest, TenantConfig


def shelf(count=2):
    return [
        Cartridge(f"tape-{index}", tiny_tape(seed=index + 1))
        for index in range(count)
    ]


def stream(cartridges, seed=3, rate=240.0):
    return poisson_library_stream(
        [c.label for c in cartridges],
        rate_per_hour=rate,
        total_segments=cartridges[0].geometry.total_segments,
        seed=seed,
    )


def make_tier(cartridges=None, drives=2, **kwargs):
    cartridges = cartridges or shelf()
    return CachedLibrarySystem(
        system=MultiDriveSystem(cartridges, drives=drives), **kwargs
    )


class TestValidation:
    def test_rejects_negative_latency(self):
        with pytest.raises(CacheError):
            make_tier(hit_latency_seconds=-1.0)

    def test_rejects_unknown_label(self):
        tier = make_tier()
        with pytest.raises(UnknownTape):
            tier.run(
                [
                    LibraryRequest(
                        arrival_seconds=0.0, label="tape-99", segment=0
                    )
                ]
            )


class TestServing:
    def test_nothing_lost_and_everything_recorded(self):
        cartridges = shelf()
        requests = stream(cartridges)
        tier = make_tier(cartridges)
        stats = tier.run(requests)
        assert tier.lost == 0
        assert stats.count + len(tier.failed) == len(requests)
        assert tier.submitted == len(requests)

    def test_repeat_accesses_hit_the_cache(self):
        cartridges = shelf(1)
        hot = [
            LibraryRequest(
                arrival_seconds=float(index * 30),
                label="tape-0",
                segment=5,
            )
            for index in range(10)
        ]
        tier = make_tier(cartridges, drives=1)
        tier.run(hot)
        assert tier.hits > 0
        assert tier.cache_stats.hits == tier.hits

    def test_hits_complete_at_disk_latency(self):
        cartridges = shelf(1)
        requests = [
            LibraryRequest(
                arrival_seconds=0.0, label="tape-0", segment=9
            ),
            LibraryRequest(
                arrival_seconds=10_000.0, label="tape-0", segment=9
            ),
        ]
        outcomes = []
        tier = make_tier(
            cartridges, drives=1, hit_latency_seconds=2.5
        )
        tier.completion_listeners.append(
            lambda request, seconds, drive: outcomes.append(
                (request.arrival_seconds, seconds, drive)
            )
        )
        tier.run(requests)
        assert tier.hits == 1
        hit = [o for o in outcomes if o[2] == -1]
        assert hit == [(10_000.0, 10_002.5, -1)]

    def test_same_segment_on_different_tapes_does_not_collide(self):
        """Global key space: tape-0/seg-5 must not hit for tape-1/seg-5."""
        cartridges = shelf()
        requests = [
            LibraryRequest(
                arrival_seconds=0.0, label="tape-0", segment=5
            ),
            LibraryRequest(
                arrival_seconds=50_000.0, label="tape-1", segment=5
            ),
        ]
        tier = make_tier(
            cartridges,
            drives=1,
            cache=SegmentCache(4),
            prefetch=False,
        )
        tier.run(requests)
        assert tier.hits == 0

    def test_cache_hit_event_carries_sentinel_drive(self):
        bus = EventBus()
        completions = bus.collect("request.complete")
        cartridges = shelf(1)
        system = MultiDriveSystem(cartridges, drives=1, bus=bus)
        tier = CachedLibrarySystem(system=system)
        tier.run(
            [
                LibraryRequest(
                    arrival_seconds=float(index * 5000),
                    label="tape-0",
                    segment=77,
                )
                for index in range(3)
            ]
        )
        assert tier.hits == 2
        hits = [e for e in completions if e.drive == -1]
        assert len(hits) == 2


class TestGatewayComposition:
    def test_gateway_over_tier_accounts_everything(self):
        cartridges = shelf()
        tier = make_tier(cartridges)
        gateway = Gateway(
            ServeConfig(tenants=(TenantConfig(name="t"),)),
            system=tier,
        )
        requests = [
            ServeRequest(
                arrival_seconds=float(index * 20),
                label=f"tape-{index % 2}",
                segment=(index * 13) % 100,
                tenant="t",
            )
            for index in range(60)
        ]
        report = gateway.run(requests)
        assert report.lost == 0
        assert report.completed + report.failed == 60
        # Hits and misses both flow through the same ledger.
        assert tier.hits + tier.system.submitted == 60
