"""The bounded segment cache."""

import pytest

from repro.cache import (
    CostThresholdAdmission,
    FIFOPolicy,
    LRUPolicy,
    SegmentCache,
)
from repro.exceptions import CacheError


class TestSegmentCache:
    def test_requires_positive_capacity(self):
        with pytest.raises(CacheError):
            SegmentCache(0)

    def test_admit_then_hit(self):
        cache = SegmentCache(4)
        assert cache.admit(10)
        assert 10 in cache
        assert cache.lookup(10) is True
        assert cache.lookup(11) is False
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_enforced_with_eviction(self):
        cache = SegmentCache(3, policy=FIFOPolicy())
        for segment in range(5):
            cache.admit(segment)
        assert len(cache) == 3
        assert cache.stats.evictions == 2
        # FIFO: 0 and 1 went first.
        assert set(cache) == {2, 3, 4}

    def test_readmit_is_touch_not_fill(self):
        cache = SegmentCache(2, policy=LRUPolicy())
        cache.admit(1)
        cache.admit(2)
        cache.admit(1)  # touch: 2 becomes LRU
        cache.admit(3)
        assert set(cache) == {1, 3}
        assert cache.stats.insertions == 3

    def test_multisegment_partial_residency_is_miss(self):
        cache = SegmentCache(8)
        cache.admit(5)
        cache.admit(6)
        assert cache.contains_run(5, 2)
        assert not cache.contains_run(5, 3)
        assert cache.lookup(5, length=3) is False
        assert cache.stats.miss_segments == 3
        cache.admit(7)
        assert cache.lookup(5, length=3) is True
        assert cache.stats.hit_segments == 3

    def test_lookup_rejects_bad_length(self):
        with pytest.raises(CacheError):
            SegmentCache(2).lookup(0, length=0)

    def test_admission_rejection_counted(self):
        cache = SegmentCache(
            4, admission=CostThresholdAdmission(min_cost_seconds=10.0)
        )
        assert cache.admit(1, cost=3.0) is False
        assert cache.admit(2, cost=30.0) is True
        assert cache.stats.rejections == 1
        assert set(cache) == {2}

    def test_prefetch_only_fills_free_space(self):
        cache = SegmentCache(2)
        cache.admit(1)
        assert cache.admit(2, prefetch=True) is True
        assert cache.admit(3, prefetch=True) is False  # full: no eviction
        assert set(cache) == {1, 2}
        assert cache.stats.prefetch_insertions == 1
        assert cache.stats.evictions == 0

    def test_invalidate(self):
        cache = SegmentCache(2)
        cache.admit(1)
        assert cache.invalidate(1) is True
        assert cache.invalidate(1) is False
        assert len(cache) == 0
        # The discarded key must not resurface as a victim.
        cache.admit(2)
        cache.admit(3)
        cache.admit(4)
        assert len(cache) == 2

    def test_admit_run_counts(self):
        cache = SegmentCache(10)
        admitted = cache.admit_run([1, 2, 3], [5.0, 5.0, 5.0])
        assert admitted == 3
        assert len(cache) == 3

    def test_free_segments(self):
        cache = SegmentCache(5)
        assert cache.free_segments == 5
        cache.admit(1)
        assert cache.free_segments == 4
