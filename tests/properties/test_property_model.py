"""Property-based tests of the locate-time model."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.constants import (
    READ_SECONDS_PER_SECTION,
    SCAN_SECONDS_PER_SECTION,
)
from repro.geometry import tiny_tape
from repro.model import EvenOddPerturbation, LocateTimeModel

_TAPE = tiny_tape(seed=11, tracks=4)
_MODEL = LocateTimeModel(_TAPE)

segments = st.integers(min_value=0, max_value=_TAPE.total_segments - 1)


@given(source=segments, destination=segments)
@settings(max_examples=150, deadline=None)
def test_nonnegative_and_bounded(source, destination):
    time = _MODEL.locate_time(source, destination)
    assert time >= 0.0
    # Worst conceivable: reposition + full-length scan + two-plus
    # sections of read + reversal.
    ceiling = (
        14 * SCAN_SECONDS_PER_SECTION
        + 3 * READ_SECONDS_PER_SECTION
        + 10.0
    )
    assert time <= ceiling


@given(source=segments)
@settings(max_examples=50, deadline=None)
def test_self_locate_free(source):
    assert _MODEL.locate_time(source, source) == 0.0


@given(source=segments, data=st.data())
@settings(max_examples=50, deadline=None)
def test_vectorized_equals_scalar(source, data):
    destinations = np.asarray(
        data.draw(st.lists(segments, min_size=1, max_size=8))
    )
    vector = _MODEL.locate_times(source, destinations)
    for destination, value in zip(destinations, vector):
        assert value == _MODEL.locate_time(source, int(destination))


@given(source=segments, destination=segments,
       error=st.floats(min_value=0.0, max_value=20.0))
@settings(max_examples=80, deadline=None)
def test_even_odd_perturbation_exact(source, destination, error):
    perturbed = EvenOddPerturbation(_MODEL, error)
    base = _MODEL.locate_time(source, destination)
    noisy = perturbed.locate_time(source, destination)
    offset = error if destination % 2 == 0 else -error
    assert noisy == max(0.0, base + offset)


@given(source=segments, destination=segments)
@settings(max_examples=80, deadline=None)
def test_same_section_read_ahead_beats_any_other_section(
    source, destination
):
    # The SLTF fast path's "fact 1": a forward read within the source's
    # section is never slower than a locate that leaves the section.
    geo = _MODEL.geometry
    same_section = int(geo.global_section_of(source)) == int(
        geo.global_section_of(destination)
    )
    if not same_section or destination < source:
        return
    inside = _MODEL.locate_time(source, destination)
    # Compare against the first segment of a few other sections.
    for track in range(geo.num_tracks):
        other = int(geo.key_points(track)[5])
        if int(geo.global_section_of(other)) == int(
            geo.global_section_of(source)
        ):
            continue
        assert inside <= _MODEL.locate_time(source, other) + 1e-9
