"""Property-based tests: the disk staging cache.

Three invariants from the caching literature, checked over arbitrary
traces: capacity is a hard bound, LRU evicts the least-recently-used
key, and (LRU's stack/inclusion property) hit count is monotone
nondecreasing in capacity for any fixed trace.
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.cache import SegmentCache, get_policy

#: A trace is a sequence of segment accesses over a small key space
#: (small so that reuse — and therefore hits/evictions — is common).
traces = st.lists(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=200
)


def run_trace(cache: SegmentCache, trace: list[int]) -> int:
    """Demand-fill the cache from an access trace; returns hits."""
    hits = 0
    for segment in trace:
        if cache.lookup(segment):
            hits += 1
        else:
            cache.admit(segment, cost=1.0 + segment % 5)
    return hits


@given(
    trace=traces,
    capacity=st.integers(min_value=1, max_value=40),
    policy=st.sampled_from(["fifo", "lru", "gdsf"]),
)
@settings(max_examples=150, deadline=None)
def test_capacity_never_exceeded(trace, capacity, policy):
    cache = SegmentCache(capacity, policy=get_policy(policy))
    for segment in trace:
        if not cache.lookup(segment):
            cache.admit(segment, cost=1.0 + segment % 5)
        assert len(cache) <= capacity


@given(trace=traces, capacity=st.integers(min_value=1, max_value=8))
@settings(max_examples=150, deadline=None)
def test_lru_matches_reference_model(trace, capacity):
    """LRU evicts exactly the least-recent key: contents always equal
    an OrderedDict reference implementation's."""
    cache = SegmentCache(capacity, policy=get_policy("lru"))
    reference: OrderedDict[int, None] = OrderedDict()
    for segment in trace:
        if cache.lookup(segment):
            assert segment in reference
            reference.move_to_end(segment)
        else:
            assert segment not in reference
            cache.admit(segment)
            reference[segment] = None
            reference.move_to_end(segment)
            while len(reference) > capacity:
                reference.popitem(last=False)  # least recently used
        assert set(cache) == set(reference)


@given(
    trace=traces,
    small=st.integers(min_value=1, max_value=20),
    extra=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=150, deadline=None)
def test_lru_hit_count_monotone_in_capacity(trace, small, extra):
    """The stack property: growing an LRU cache never loses hits on a
    fixed trace."""
    few = run_trace(SegmentCache(small, policy=get_policy("lru")), trace)
    many = run_trace(
        SegmentCache(small + extra, policy=get_policy("lru")), trace
    )
    assert many >= few


@given(trace=traces, capacity=st.integers(min_value=1, max_value=40))
@settings(max_examples=100, deadline=None)
def test_stats_are_consistent(trace, capacity):
    cache = SegmentCache(capacity, policy=get_policy("gdsf"))
    hits = run_trace(cache, trace)
    stats = cache.stats
    assert stats.hits == hits
    assert stats.lookups == len(trace)
    assert stats.hits + stats.misses == len(trace)
    assert stats.insertions - stats.evictions == len(cache)
    assert 0.0 <= stats.hit_rate <= 1.0
