"""Property-based tests: telemetry span accounting and round-trips."""

from hypothesis import given, settings, strategies as st

from repro.geometry import tiny_tape
from repro.obs import (
    EventBus,
    TraceRecorder,
    event_from_record,
    response_stats_from_events,
)
from repro.online import BatchPolicy, TertiaryStorageSystem
from repro.workload import TimedRequest

TAPE = tiny_tape(seed=11)


def run_instrumented(segments, max_batch):
    bus = EventBus()
    recorder = TraceRecorder(bus)
    system = TertiaryStorageSystem(
        geometry=TAPE, bus=bus, policy=BatchPolicy(max_batch=max_batch)
    )
    requests = [
        TimedRequest(float(i) * 5.0, segment)
        for i, segment in enumerate(segments)
    ]
    stats = system.run(requests)
    return system, stats, recorder


@given(
    segments=st.lists(
        st.integers(min_value=0, max_value=TAPE.total_segments - 1),
        min_size=1,
        max_size=24,
    ),
    max_batch=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_span_phases_sum_to_batch_execution(segments, max_batch):
    """For any workload, each batch's per-phase durations partition
    its measured execution seconds (the tentpole invariant)."""
    system, _, recorder = run_instrumented(segments, max_batch)
    spans = recorder.batch_spans()
    assert len(spans) == len(system.batches)
    for span, record in zip(spans, system.batches):
        assert abs(span.phase_seconds - span.total_seconds) <= 1e-6
        assert abs(
            span.total_seconds - record.execution_seconds
        ) <= 1e-12
        assert span.locate_seconds >= 0.0
        assert span.transfer_seconds >= 0.0
        assert span.rewind_seconds >= 0.0


@given(
    segments=st.lists(
        st.integers(min_value=0, max_value=TAPE.total_segments - 1),
        min_size=1,
        max_size=16,
    ),
    max_batch=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_stream_rebuilds_stats_and_round_trips(segments, max_batch):
    """The event stream is the source of truth: it reproduces the
    system's ResponseStats exactly and survives the record round-trip."""
    _, stats, recorder = run_instrumented(segments, max_batch)
    rebuilt = response_stats_from_events(recorder.events)
    assert rebuilt.samples == stats.samples
    for event in recorder.events:
        assert event_from_record(event.to_record()) == event
