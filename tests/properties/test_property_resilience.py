"""Property-based tests: no request is ever silently dropped.

The resilience layer's core contract, checked over randomized fault
rates, seeds, and retry budgets: every admitted request is either a
recorded completion or a surfaced failure — never lost — and the
completion times of the requests that did complete are consistent with
a drive whose clock only moves forward.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.drive import SimulatedDrive
from repro.online.batch_queue import BatchPolicy
from repro.online.system import TertiaryStorageSystem
from repro.resilience import FaultInjector, FaultPlan, RetryPolicy
from repro.scheduling import SortScheduler, execute_schedule
from repro.workload.arrivals import PoissonArrivals


@given(
    fault_rate=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**31),
    max_attempts=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_every_request_completes_or_fails(
    tiny, fault_rate, seed, max_attempts
):
    from repro.resilience import ResilienceConfig

    system = TertiaryStorageSystem(
        geometry=tiny,
        policy=BatchPolicy(max_batch=8),
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=max_attempts, seed=seed),
            max_requeues=1,
        ),
        fault_plan=FaultPlan(
            locate_fault_probability=fault_rate, seed=seed
        ),
    )
    requests = PoissonArrivals(
        rate_per_hour=240.0, total_segments=tiny.total_segments,
        seed=seed % 1000,
    ).batch(600.0)
    stats = system.run(requests)
    # No silent drops: completions + surfaced failures == admissions.
    assert stats.count + len(system.failed) == len(requests)
    # The books also balance per batch.
    assert sum(r.failed for r in system.batches) >= len(system.failed)
    # The queue drained.
    assert len(system.queue) == 0


@given(
    fault_rate=st.floats(min_value=0.0, max_value=0.5),
    read_rate=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=2**31),
    max_attempts=st.integers(min_value=1, max_value=5),
    batch_seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_executor_accounts_for_every_scheduled_request(
    tiny_model, fault_rate, read_rate, seed, max_attempts, batch_seed
):
    rng = np.random.default_rng(batch_seed)
    batch = rng.choice(
        tiny_model.geometry.total_segments, 10, replace=False
    ).tolist()
    schedule = SortScheduler().schedule(tiny_model, 0, batch)
    drive = FaultInjector(
        SimulatedDrive(tiny_model),
        FaultPlan(
            locate_fault_probability=fault_rate,
            read_fault_probability=read_rate,
            seed=seed,
        ),
    )
    result = execute_schedule(
        drive, schedule,
        policy=RetryPolicy(max_attempts=max_attempts, seed=seed),
    )
    # Every scheduled request is flagged one way or the other.
    assert result.success.shape == (len(schedule),)
    assert result.completed_count + result.failed_count == len(schedule)
    # Completion times exist exactly for the successes...
    assert np.isfinite(
        result.completion_seconds[result.success]
    ).all()
    assert np.isnan(
        result.completion_seconds[~result.success]
    ).all()
    # ...and are strictly increasing in schedule order: the drive's
    # clock only moves forward, and each request completes after the
    # previous one.
    completed = result.completion_seconds[result.success]
    assert (np.diff(completed) > 0).all()
    # Time accounting closes: phases partition the measured total.
    assert result.total_seconds >= 0
    assert np.isclose(
        result.locate_seconds
        + result.transfer_seconds
        + result.fault_seconds,
        result.total_seconds,
    )
    # Attempt counts respect the policy.
    assert (result.attempts >= 1).all()
    assert (result.attempts <= max_attempts).all()


@given(
    fault_rate=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_zero_and_nonzero_rates_share_the_clean_floor(
    tiny_model, fault_rate, seed
):
    rng = np.random.default_rng(4242)
    batch = rng.choice(
        tiny_model.geometry.total_segments, 8, replace=False
    ).tolist()
    schedule = SortScheduler().schedule(tiny_model, 0, batch)
    clean = execute_schedule(
        SimulatedDrive(tiny_model), schedule, policy=RetryPolicy()
    )
    faulted = execute_schedule(
        FaultInjector(
            SimulatedDrive(tiny_model),
            FaultPlan(locate_fault_probability=fault_rate, seed=seed),
        ),
        schedule,
        policy=RetryPolicy(seed=seed),
    )
    # With only locate faults the head never moves on a failed attempt,
    # so when every request completes, each completion is the clean
    # time plus non-negative penalty/backoff time.
    if faulted.all_succeeded:
        assert faulted.total_seconds >= clean.total_seconds - 1e-9
        assert (
            faulted.completion_seconds
            >= clean.completion_seconds - 1e-9
        ).all()
    else:
        # A permanently failed request wastes bounded penalty time but
        # skips its locate and read entirely — its successors may even
        # finish earlier than in the clean run.  The invariant that
        # remains: the executor still accounts for everything.
        assert faulted.completed_count + faulted.failed_count == len(
            schedule
        )
