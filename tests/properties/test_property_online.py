"""Property-based tests: striping, bounds, Or-opt."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.bounds import in_edge_bound, out_edge_bound
from repro.online import StripeMapping
from repro.scheduling import or_opt_order


@given(
    drives=st.integers(min_value=1, max_value=8),
    stripe_unit=st.integers(min_value=1, max_value=16),
    units_per_drive=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=100, deadline=None)
def test_stripe_mapping_is_bijective(drives, stripe_unit,
                                     units_per_drive):
    mapping = StripeMapping(
        drives=drives,
        stripe_unit=stripe_unit,
        units_per_drive=units_per_drive,
    )
    seen = set()
    for logical in range(mapping.logical_total):
        drive, physical = mapping.locate(logical)
        assert 0 <= drive < drives
        assert 0 <= physical < units_per_drive * stripe_unit
        assert mapping.logical_of(drive, physical) == logical
        seen.add((drive, physical))
    assert len(seen) == mapping.logical_total


@given(
    drives=st.integers(min_value=1, max_value=6),
    stripe_unit=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_consecutive_units_rotate_drives(drives, stripe_unit):
    mapping = StripeMapping(
        drives=drives, stripe_unit=stripe_unit, units_per_drive=5
    )
    for unit in range(drives * 3):
        logical = unit * stripe_unit
        drive, _ = mapping.locate(logical)
        assert drive == unit % drives


@st.composite
def rect_matrices(draw, max_n=7):
    n = draw(st.integers(min_value=1, max_value=max_n))
    values = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=50.0),
            min_size=(n + 1) * n,
            max_size=(n + 1) * n,
        )
    )
    return np.asarray(values).reshape(n + 1, n)


def path_cost(matrix, order):
    cost = matrix[0, order[0]]
    for a, b in zip(order, order[1:]):
        cost += matrix[a + 1, b]
    return float(cost)


@given(matrix=rect_matrices(), data=st.data())
@settings(max_examples=100, deadline=None)
def test_bounds_hold_for_any_permutation(matrix, data):
    n = matrix.shape[1]
    order = data.draw(st.permutations(list(range(n))))
    cost = path_cost(matrix, list(order))
    assert in_edge_bound(matrix) <= cost + 1e-9
    assert out_edge_bound(matrix) <= cost + 1e-9


@given(matrix=rect_matrices(), data=st.data())
@settings(max_examples=80, deadline=None)
def test_or_opt_never_increases_cost(matrix, data):
    n = matrix.shape[1]
    start = list(data.draw(st.permutations(list(range(n)))))
    improved = or_opt_order(matrix, start)
    assert sorted(improved) == list(range(n))
    assert path_cost(matrix, improved) <= path_cost(matrix, start) + 1e-9
