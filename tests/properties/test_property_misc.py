"""Property-based tests: coalescing, workloads, statistics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.experiments import RunningStats
from repro.scheduling import (
    Request,
    coalesce_by_threshold,
    expand_groups,
)
from repro.workload import LRand48


@given(
    segments=st.lists(
        st.integers(min_value=0, max_value=100_000),
        min_size=1, max_size=60,
    ),
    threshold=st.integers(min_value=1, max_value=5000),
)
@settings(max_examples=120, deadline=None)
def test_coalescing_partitions_and_respects_threshold(segments, threshold):
    batch = [Request(s) for s in segments]
    groups = coalesce_by_threshold(batch, threshold)
    # Partition: expanding returns the same multiset.
    assert sorted(expand_groups(groups)) == sorted(batch)
    # Within a group, consecutive gaps stay below the threshold.
    for group in groups:
        ordered = [r.segment for r in group.requests]
        assert ordered == sorted(ordered)
        for a, b in zip(ordered, ordered[1:]):
            assert b - a < threshold
    # Between consecutive groups, the gap reaches the threshold.
    for left, right in zip(groups, groups[1:]):
        assert (
            right.first_segment - left.requests[-1].segment >= threshold
        )


@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       bound=st.integers(min_value=1, max_value=2**30))
@settings(max_examples=100, deadline=None)
def test_lrand48_below_in_range_and_deterministic(seed, bound):
    a = LRand48(seed)
    b = LRand48(seed)
    for _ in range(5):
        value = a.below(bound)
        assert 0 <= value < bound
        assert value == b.below(bound)


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6),
        min_size=2, max_size=200,
    )
)
@settings(max_examples=100, deadline=None)
def test_running_stats_matches_numpy(values):
    stats = RunningStats()
    stats.extend(values)
    array = np.asarray(values)
    assert np.isclose(stats.mean, array.mean(), rtol=1e-9, atol=1e-6)
    assert np.isclose(
        stats.std, array.std(ddof=1), rtol=1e-7, atol=1e-6
    )


@given(
    left=st.lists(st.floats(min_value=-1e4, max_value=1e4),
                  min_size=1, max_size=50),
    right=st.lists(st.floats(min_value=-1e4, max_value=1e4),
                   min_size=1, max_size=50),
)
@settings(max_examples=80, deadline=None)
def test_running_stats_merge_equals_pooled(left, right):
    merged = RunningStats()
    merged.extend(left)
    other = RunningStats()
    other.extend(right)
    merged.merge(other)

    pooled = RunningStats()
    pooled.extend(left + right)
    assert np.isclose(merged.mean, pooled.mean, rtol=1e-9, atol=1e-6)
    assert np.isclose(merged.std, pooled.std, rtol=1e-7, atol=1e-6)
