"""Property-based tests of the tape geometry."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry import tiny_tape

#: A small pool of distinct tiny tapes, indexed by a drawn seed.
_TAPES = {seed: tiny_tape(seed=seed, tracks=4) for seed in range(4)}

tape_seeds = st.integers(min_value=0, max_value=3)


@given(seed=tape_seeds, data=st.data())
@settings(max_examples=60, deadline=None)
def test_coordinate_round_trip(seed, data):
    tape = _TAPES[seed]
    segment = data.draw(
        st.integers(min_value=0, max_value=tape.total_segments - 1)
    )
    coord = tape.coordinate_of(segment)
    assert tape.segment_at(coord.track, coord.section, coord.offset) == (
        segment
    )
    assert 0 <= coord.track < tape.num_tracks
    assert 0 <= coord.section < 14


@given(seed=tape_seeds, data=st.data())
@settings(max_examples=60, deadline=None)
def test_ordinal_physical_consistency(seed, data):
    tape = _TAPES[seed]
    segment = data.draw(
        st.integers(min_value=0, max_value=tape.total_segments - 1)
    )
    soi = int(tape.ordinal_section_of(segment))
    section = int(tape.section_of(segment))
    if int(tape.direction_of(segment)) > 0:
        assert soi == section
    else:
        assert soi == 13 - section


@given(seed=tape_seeds, data=st.data())
@settings(max_examples=40, deadline=None)
def test_segment_order_follows_physical_order_within_track(seed, data):
    tape = _TAPES[seed]
    track = data.draw(
        st.integers(min_value=0, max_value=tape.num_tracks - 1)
    )
    layout = tape.track_layout(track)
    a, b = sorted(
        data.draw(
            st.lists(
                st.integers(layout.first_segment, layout.last_segment),
                min_size=2,
                max_size=2,
                unique=True,
            )
        )
    )
    phys_a = float(tape.phys_of(a))
    phys_b = float(tape.phys_of(b))
    if track % 2 == 0:
        assert phys_a < phys_b
    else:
        assert phys_a > phys_b


@given(seed=tape_seeds, data=st.data())
@settings(max_examples=40, deadline=None)
def test_scan_target_is_behind_destination(seed, data):
    # The scan target (key point two before) never lies past the
    # destination in segment order.
    tape = _TAPES[seed]
    segment = data.draw(
        st.integers(min_value=0, max_value=tape.total_segments - 1)
    )
    target_phys = float(tape.scan_target_phys(segment))
    dest_phys = float(tape.phys_of(segment))
    direction = int(tape.direction_of(segment))
    assert (dest_phys - target_phys) * direction >= 0.0


@given(seed=tape_seeds)
@settings(max_examples=4, deadline=None)
def test_key_points_partition_the_tape(seed):
    tape = _TAPES[seed]
    points = tape.all_key_points()
    flat = points.ravel()
    assert flat[0] == 0
    assert np.all(np.diff(flat) > 0)
    assert flat[-1] < tape.total_segments
