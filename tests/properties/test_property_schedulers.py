"""Property-based tests of the schedulers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.drive import SimulatedDrive
from repro.geometry import tiny_tape
from repro.model import LinearizedModel, LocateTimeModel, out_positions
from repro.scheduling import (
    execute_schedule,
    get_scheduler,
    held_karp_path,
    brute_force_path,
    locate_sequence_times,
    loss_path,
    request_lengths,
)

_TAPE = tiny_tape(seed=21, tracks=4)
_MODEL = LocateTimeModel(_TAPE)
_LINEAR = LinearizedModel(_MODEL)

segments = st.integers(min_value=0, max_value=_TAPE.total_segments - 1)
batches = st.lists(segments, min_size=1, max_size=24, unique=True)
algorithms = st.sampled_from(
    ["FIFO", "SORT", "SLTF", "SLTF-naive", "SLTF-coalesce",
     "SCAN", "WEAVE", "LOSS", "LOSS-raw", "LOSS-sparse",
     "LOSS+oropt", "READ",
     "LTSP-exact", "LTSP-repair", "LTSP-sweep", "LTSP-greedy"]
)
ltsp_algorithms = st.sampled_from(
    ["LTSP-exact", "LTSP-repair", "LTSP-sweep", "LTSP-greedy"]
)


@given(batch=batches, origin=segments, name=algorithms)
@settings(max_examples=120, deadline=None)
def test_every_scheduler_returns_a_permutation(batch, origin, name):
    schedule = get_scheduler(name).schedule(_MODEL, origin, batch)
    assert sorted(r.segment for r in schedule) == sorted(batch)
    assert schedule.origin == origin
    assert schedule.estimated_seconds is not None
    assert schedule.estimated_seconds >= 0.0


@given(batch=st.lists(segments, min_size=1, max_size=7, unique=True),
       origin=segments)
@settings(max_examples=40, deadline=None)
def test_opt_lower_bounds_heuristics(batch, origin):
    opt = get_scheduler("OPT").schedule(_MODEL, origin, batch)
    for name in ("FIFO", "SORT", "SLTF", "SCAN", "WEAVE", "LOSS"):
        other = get_scheduler(name).schedule(_MODEL, origin, batch)
        assert opt.estimated_seconds <= other.estimated_seconds + 1e-6


@given(batch=st.lists(segments, min_size=1, max_size=12, unique=True),
       origin=segments, name=algorithms)
@settings(max_examples=60, deadline=None)
def test_estimate_matches_execution(batch, origin, name):
    schedule = get_scheduler(name).schedule(_MODEL, origin, batch)
    drive = SimulatedDrive(_MODEL, initial_position=origin)
    result = execute_schedule(drive, schedule)
    assert abs(result.total_seconds - schedule.estimated_seconds) < 1e-6


@st.composite
def distance_matrices(draw, max_size=6):
    n = draw(st.integers(min_value=1, max_value=max_size))
    values = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=99.0),
            min_size=(n + 1) * n,
            max_size=(n + 1) * n,
        )
    )
    return np.asarray(values, dtype=np.float64).reshape(n + 1, n)


@given(matrix=distance_matrices())
@settings(max_examples=80, deadline=None)
def test_held_karp_is_exact(matrix):
    n = matrix.shape[1]
    dp = held_karp_path(matrix)
    bf = brute_force_path(matrix)

    def cost(order):
        total = matrix[0, order[0]]
        for a, b in zip(order, order[1:]):
            total += matrix[a + 1, b]
        return total

    assert sorted(dp) == list(range(n))
    assert cost(dp) <= cost(bf) + 1e-9


def _linear_travel(schedule):
    """Total linear head travel: deadhead plus read legs."""
    deadhead = float(locate_sequence_times(_LINEAR, schedule).sum())
    segs = schedule.segments()
    lengths = request_lengths(schedule.requests)
    exits = out_positions(segs, lengths, _TAPE.total_segments)
    read_legs = float(
        np.abs(_TAPE.phys_of(exits) - _TAPE.phys_of(segs)).sum()
    ) * _LINEAR.seconds_per_section
    return deadhead + read_legs


@given(batch=batches, origin=segments, name=ltsp_algorithms)
@settings(max_examples=80, deadline=None)
def test_ltsp_schedulers_are_deterministic_and_relabel_stable(
    batch, origin, name
):
    """Same schedule for the same batch in any arrival order."""
    scheduler = get_scheduler(name)
    first = scheduler.schedule(_MODEL, origin, batch)
    second = scheduler.schedule(_MODEL, origin, list(reversed(batch)))
    assert [r.segment for r in first] == [r.segment for r in second]
    assert first.estimated_seconds == second.estimated_seconds


@given(batch=batches, origin=segments)
@settings(max_examples=80, deadline=None)
def test_sweep_respects_three_approximation_on_linear_costs(
    batch, origin
):
    """The sweep policy's total linear travel is at most 3x optimal.

    Proof sketch (docs/OPTIMALITY.md): the better sweep's deadhead is
    at most span + lead-in + 2F where F is the total read-leg travel;
    the optimum's total is at least max(span + lead-in, F); hence
    sweep_total <= OPT + 2F <= 3 * OPT.
    """
    optimum = _linear_travel(
        get_scheduler("LTSP-exact").schedule(_LINEAR, origin, batch)
    )
    sweep = _linear_travel(
        get_scheduler("LTSP-sweep").schedule(_LINEAR, origin, batch)
    )
    assert sweep <= 3.0 * optimum + 1e-6


@given(batch=batches, origin=segments, name=ltsp_algorithms)
@settings(max_examples=60, deadline=None)
def test_ltsp_schedulers_never_beat_exact_linear_travel(
    batch, origin, name
):
    optimum = _linear_travel(
        get_scheduler("LTSP-exact").schedule(_LINEAR, origin, batch)
    )
    other = _linear_travel(
        get_scheduler(name).schedule(_LINEAR, origin, batch)
    )
    assert other >= optimum - 1e-6


@given(matrix=distance_matrices(max_size=10))
@settings(max_examples=60, deadline=None)
def test_loss_path_is_a_valid_path(matrix):
    n = matrix.shape[1]
    square = np.full((n + 1, n + 1), np.inf)
    square[:, 1:] = matrix
    order = loss_path(square)
    assert sorted(order) == list(range(1, n + 1))
