"""Counters, gauges, histograms, the registry, and the standard binding."""

import numpy as np
import pytest

from repro.exceptions import MetricsError, NoSamplesError
from repro.obs import EventBus, MetricsRegistry, bind_standard_metrics
from repro.obs.events import (
    BatchCompleted,
    QueueAdmitted,
    QueueDispatched,
    RequestCompleted,
    RequestLocated,
)


class TestCounter:
    def test_increments(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_cannot_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(MetricsError):
            counter.inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0


class TestHistogram:
    def test_aggregates(self):
        hist = MetricsRegistry().histogram("h")
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 6.0
        assert hist.mean == 2.0
        assert hist.min == 1.0
        assert hist.max == 3.0

    def test_empty_raises_no_samples(self):
        hist = MetricsRegistry().histogram("h")
        with pytest.raises(NoSamplesError):
            hist.mean
        with pytest.raises(NoSamplesError):
            hist.percentile(50)

    def test_non_finite_sample_rejected(self):
        hist = MetricsRegistry().histogram("h")
        with pytest.raises(MetricsError):
            hist.observe(float("nan"))
        with pytest.raises(MetricsError):
            hist.observe(float("inf"))

    def test_percentile_bounds_checked(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1.0)
        with pytest.raises(MetricsError):
            hist.percentile(-1)
        with pytest.raises(MetricsError):
            hist.percentile(101)

    @pytest.mark.parametrize("n", [1, 2, 5, 100, 257])
    def test_percentile_matches_numpy(self, n, rng):
        samples = rng.exponential(scale=40.0, size=n)
        hist = MetricsRegistry().histogram("h")
        for value in samples:
            hist.observe(float(value))
        for q in (0, 1, 25, 50, 75, 90, 95, 99, 99.9, 100):
            assert hist.percentile(q) == pytest.approx(
                float(np.percentile(samples, q)), rel=1e-12, abs=1e-12
            )

    def test_observation_after_query_resorts(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(5.0)
        assert hist.percentile(50) == 5.0
        hist.observe(1.0)
        assert hist.min == 1.0
        assert hist.percentile(50) == 3.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(MetricsError):
            registry.gauge("a")
        with pytest.raises(MetricsError):
            registry.histogram("a")

    def test_container_protocol(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert "a" in registry and "c" not in registry
        assert list(registry) == ["a", "b"]
        assert len(registry) == 2

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.histogram("empty")
        hist = registry.histogram("resp")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        snapshot = registry.as_dict()
        assert snapshot["hits"] == 3.0
        assert snapshot["empty"] == {"count": 0}
        assert snapshot["resp"]["count"] == 3
        assert snapshot["resp"]["mean"] == 2.0
        assert snapshot["resp"]["p50"] == 2.0


class TestStandardBinding:
    def test_populates_from_event_stream(self):
        bus = EventBus()
        registry = bind_standard_metrics(bus)
        bus.publish(QueueAdmitted(seconds=0.0, segment=1, length=1,
                                  arrival_seconds=0.0, queue_depth=3))
        bus.publish(QueueDispatched(seconds=1.0, batch_size=2,
                                    oldest_arrival_seconds=0.0))
        bus.publish(RequestLocated(seconds=2.0, position=0, source=0,
                                   segment=5, actual_seconds=10.0,
                                   estimated_seconds=10.5))
        bus.publish(RequestCompleted(seconds=12.0, position=0, segment=5,
                                     length=1, arrival_seconds=0.0,
                                     completion_seconds=12.0))
        bus.publish(BatchCompleted(seconds=12.0, batch_index=0,
                                   algorithm="LOSS", batch_size=2,
                                   queue_wait_seconds=1.0,
                                   locate_seconds=10.0,
                                   transfer_seconds=2.0,
                                   rewind_seconds=0.0,
                                   total_seconds=12.0,
                                   estimated_seconds=None))
        assert registry.counter("events.queue.admit").value == 1
        assert registry.gauge("queue.depth").value == 1.0  # 3 - 2
        assert registry.histogram(
            "request.response_seconds"
        ).mean == 12.0
        assert registry.histogram(
            "request.locate_seconds"
        ).mean == 10.0
        assert registry.histogram(
            "request.locate_error_seconds"
        ).mean == pytest.approx(0.5)
        assert registry.histogram("batch.execution_seconds").count == 1
        assert registry.histogram("batch.size").mean == 2.0

    def test_locate_without_estimate_skips_error_histogram(self):
        bus = EventBus()
        registry = bind_standard_metrics(bus)
        bus.publish(RequestLocated(seconds=2.0, position=0, source=0,
                                   segment=5, actual_seconds=10.0,
                                   estimated_seconds=None))
        assert "request.locate_error_seconds" not in registry

    def test_reuses_given_registry(self):
        bus = EventBus()
        registry = MetricsRegistry()
        assert bind_standard_metrics(bus, registry) is registry
