"""Event taxonomy: registry, record round-trip, deprecation shims."""

import warnings

import pytest

from repro.obs import EVENT_TYPES, event_from_record
from repro.obs.events import (
    BatchCompleted,
    CacheHit,
    DriveEvent,
    EventKind,
    QueueAdmitted,
    RequestCompleted,
    RequestLocated,
)

EXPECTED_NAMES = {
    "queue.admit",
    "queue.dispatch",
    "schedule.computed",
    "batch.start",
    "batch.complete",
    "request.locate",
    "request.read",
    "request.complete",
    "cache.hit",
    "cache.miss",
    "cache.admit",
    "cache.reject",
    "cache.evict",
    "library.mount",
    "library.unmount",
    "library.mount_wait",
    "drive.op",
    "fault.injected",
    "request.retry",
    "request.failed",
    "system.degraded",
}


class TestRegistry:
    def test_taxonomy_registered(self):
        assert EXPECTED_NAMES <= set(EVENT_TYPES)

    def test_names_are_dotted(self):
        for name in EXPECTED_NAMES:
            layer, action = name.split(".")
            assert layer and action

    def test_registry_maps_name_to_class(self):
        assert EVENT_TYPES["cache.hit"] is CacheHit
        assert EVENT_TYPES["queue.admit"] is QueueAdmitted

    def test_duplicate_name_rejected(self):
        from dataclasses import dataclass
        from typing import ClassVar

        from repro.obs.events import Event

        with pytest.raises(ValueError, match="duplicate"):

            @dataclass(frozen=True, slots=True)
            class Impostor(Event):
                name: ClassVar[str] = "cache.hit"


class TestRecords:
    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_round_trip_every_type(self, name):
        cls = EVENT_TYPES[name]
        from dataclasses import fields

        kwargs = {}
        for spec in fields(cls):
            if spec.type in ("float", "float | None"):
                kwargs[spec.name] = 1.5
            elif spec.type == "int":
                kwargs[spec.name] = 7
            elif spec.type == "bool":
                kwargs[spec.name] = True
            else:
                kwargs[spec.name] = "x"
        event = cls(**kwargs)
        record = event.to_record()
        assert record["event"] == name
        assert event_from_record(record) == event

    def test_optional_none_round_trips(self):
        event = RequestLocated(
            seconds=3.0, position=0, source=0, segment=5,
            actual_seconds=2.0, estimated_seconds=None,
        )
        assert event_from_record(event.to_record()) == event

    def test_record_is_flat_and_json_safe(self):
        import json

        event = BatchCompleted(
            seconds=9.0, batch_index=0, algorithm="LOSS", batch_size=3,
            queue_wait_seconds=1.0, locate_seconds=4.0,
            transfer_seconds=2.0, rewind_seconds=0.0, total_seconds=6.0,
            estimated_seconds=6.1,
        )
        round_tripped = json.loads(json.dumps(event.to_record()))
        assert event_from_record(round_tripped) == event

    def test_unknown_event_name_raises(self):
        with pytest.raises(ValueError, match="unknown event"):
            event_from_record({"event": "no.such", "seconds": 0.0})

    def test_missing_event_key_raises(self):
        with pytest.raises(ValueError, match="no 'event' key"):
            event_from_record({"seconds": 0.0})


class TestDerivedProperties:
    def test_response_seconds(self):
        event = RequestCompleted(
            seconds=12.0, position=2, segment=9, length=1,
            arrival_seconds=2.0, completion_seconds=12.0,
        )
        assert event.response_seconds == 10.0

    def test_events_are_frozen(self):
        event = CacheHit(seconds=0.0, segment=1, length=1)
        with pytest.raises(AttributeError):
            event.segment = 2


class TestDeprecationShim:
    @pytest.fixture()
    def fresh_shim(self, monkeypatch):
        """The shim with its warned-once memory cleared."""
        import repro.drive.events as shim

        monkeypatch.setattr(shim, "_warned", set())
        return shim

    def test_old_drive_event_path_warns_once(self, fresh_shim):
        with pytest.warns(DeprecationWarning, match="repro.obs.events"):
            cls = fresh_shim.DriveEvent
        assert cls is DriveEvent

    def test_old_event_kind_path_warns(self, fresh_shim):
        with pytest.warns(DeprecationWarning, match="repro.obs.events"):
            kind = fresh_shim.EventKind
        assert kind is EventKind

    def test_every_moved_name_resolves(self, fresh_shim):
        from repro.obs import events as canonical

        for name in fresh_shim._MOVED:
            with pytest.warns(DeprecationWarning, match=name):
                resolved = getattr(fresh_shim, name)
            assert resolved is getattr(canonical, name)
        assert sorted(fresh_shim._MOVED) == dir(fresh_shim)

    def test_warns_exactly_once_per_name(self, fresh_shim):
        with pytest.warns(DeprecationWarning) as caught:
            fresh_shim.DriveEvent
        assert len(caught) == 1
        # Second access: silent, even under -W error.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert fresh_shim.DriveEvent is DriveEvent
        # A different name still gets its own (single) warning.
        with pytest.warns(DeprecationWarning) as caught:
            fresh_shim.EventKind
        assert len(caught) == 1

    def test_shim_unknown_attribute_raises(self):
        import repro.drive.events as shim

        with pytest.raises(AttributeError):
            shim.NoSuchName

    def test_package_reexport_stays_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.drive import DriveEvent as from_package  # noqa: F401
