"""Trace recording, span reconstruction, export round-trips, summaries."""

import pytest

from repro.exceptions import TraceError
from repro.obs import (
    EventBus,
    TraceRecorder,
    batch_spans,
    cache_stats_from_events,
    read_events_jsonl,
    request_spans,
    response_stats_from_events,
    summarize_events,
    write_events_csv,
    write_events_jsonl,
)
from repro.obs.events import (
    BatchCompleted,
    BatchStarted,
    CacheAdmitted,
    CacheEvicted,
    CacheHit,
    CacheMiss,
    CacheRejected,
    RequestCompleted,
    RequestLocated,
)


def sample_stream():
    """A small hand-built stream covering every summary input."""
    return [
        BatchStarted(seconds=10.0, batch_index=0, batch_size=2, origin=0),
        RequestLocated(seconds=15.0, position=0, source=0, segment=4,
                       actual_seconds=5.0, estimated_seconds=5.5),
        RequestCompleted(seconds=16.0, position=0, segment=4, length=1,
                         arrival_seconds=1.0, completion_seconds=16.0),
        RequestCompleted(seconds=20.0, position=1, segment=9, length=1,
                         arrival_seconds=2.0, completion_seconds=20.0),
        BatchCompleted(seconds=20.0, batch_index=0, algorithm="LOSS",
                       batch_size=2, queue_wait_seconds=17.0,
                       locate_seconds=7.0, transfer_seconds=3.0,
                       rewind_seconds=0.0, total_seconds=10.0,
                       estimated_seconds=10.2),
        CacheHit(seconds=21.0, segment=4, length=1),
        CacheMiss(seconds=22.0, segment=5, length=2),
        CacheAdmitted(seconds=22.5, segment=5, prefetch=False),
        CacheAdmitted(seconds=22.6, segment=6, prefetch=True),
        CacheRejected(seconds=23.0, segment=7),
        CacheEvicted(seconds=23.5, segment=4),
        RequestCompleted(seconds=24.0, position=-1, segment=4, length=1,
                         arrival_seconds=23.0, completion_seconds=24.0),
    ]


class TestRecorder:
    def test_records_from_bus(self):
        bus = EventBus()
        recorder = TraceRecorder(bus)
        stream = sample_stream()
        for event in stream:
            bus.publish(event)
        assert recorder.events == stream
        assert len(recorder) == len(stream)

    def test_kinds_filter(self):
        bus = EventBus()
        recorder = TraceRecorder(bus, kinds=["cache.hit", "cache.miss"])
        for event in sample_stream():
            bus.publish(event)
        assert [e.name for e in recorder.events] == [
            "cache.hit", "cache.miss",
        ]

    def test_close_stops_recording_keeps_events(self):
        bus = EventBus()
        recorder = TraceRecorder(bus)
        bus.publish(CacheHit(seconds=0.0, segment=1, length=1))
        recorder.close()
        recorder.close()  # idempotent
        bus.publish(CacheHit(seconds=1.0, segment=2, length=1))
        assert len(recorder) == 1

    def test_standalone_recorder_replays(self):
        recorder = TraceRecorder()
        for event in sample_stream():
            recorder.record(event)
        assert recorder.summary().batch_count == 1


class TestSpans:
    def test_batch_span_fields(self):
        (span,) = batch_spans(sample_stream())
        assert span.batch_index == 0
        assert span.start_seconds == 10.0
        assert span.end_seconds == 20.0
        assert span.phase_seconds == span.total_seconds
        assert span.algorithm == "LOSS"

    def test_orphan_complete_raises(self):
        orphan = BatchCompleted(
            seconds=5.0, batch_index=3, algorithm="LOSS", batch_size=1,
            queue_wait_seconds=0.0, locate_seconds=1.0,
            transfer_seconds=0.0, rewind_seconds=0.0, total_seconds=1.0,
            estimated_seconds=None,
        )
        with pytest.raises(TraceError, match="without a batch.start"):
            batch_spans([orphan])

    def test_request_spans(self):
        spans = request_spans(sample_stream())
        assert len(spans) == 3
        assert spans[0].response_seconds == 15.0
        assert not spans[0].cache_hit
        assert spans[2].cache_hit  # position -1


class TestReconstruction:
    def test_response_stats_from_events(self):
        stats = response_stats_from_events(sample_stream())
        assert stats.count == 3
        assert stats.mean_seconds == pytest.approx((15 + 18 + 1) / 3)

    def test_cache_stats_from_events(self):
        stats = cache_stats_from_events(sample_stream())
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.insertions == 1
        assert stats.prefetch_insertions == 1
        assert stats.rejections == 1
        assert stats.evictions == 1


class TestExport:
    def test_jsonl_round_trip_identity(self, tmp_path):
        stream = sample_stream()
        path = write_events_jsonl(stream, tmp_path / "trace.jsonl")
        assert read_events_jsonl(path) == stream

    def test_jsonl_skips_blank_lines(self, tmp_path):
        stream = sample_stream()
        path = write_events_jsonl(stream, tmp_path / "trace.jsonl")
        text = path.read_text()
        path.write_text(text.replace("\n", "\n\n", 1))
        assert read_events_jsonl(path) == stream

    def test_jsonl_parse_error_names_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"event": "cache.hit", "seconds": 0.0, '
            '"segment": 1, "length": 1}\n'
            "not json\n"
        )
        with pytest.raises(TraceError, match=r"bad\.jsonl:2"):
            read_events_jsonl(path)

    def test_csv_union_of_fields(self, tmp_path):
        import csv

        stream = sample_stream()
        path = write_events_csv(stream, tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(stream)
        assert rows[0]["event"] == "batch.start"
        # Fields a row does not have are blank, not missing.
        assert rows[0]["segment"] == ""
        assert rows[5]["segment"] == "4"


class TestSummary:
    def test_summary_aggregates(self):
        summary = summarize_events(sample_stream())
        assert summary.event_count == 12
        assert summary.batch_count == 1
        assert summary.request_count == 3
        assert summary.cache_hit_count == 1
        assert summary.mean_response_seconds == pytest.approx(34 / 3)
        assert summary.max_response_seconds == 18.0
        assert summary.queue_wait_seconds == 17.0
        assert summary.locate_seconds == 7.0
        assert summary.transfer_seconds == 3.0
        assert summary.rewind_seconds == 0.0
        assert summary.execution_seconds == 10.0
        assert summary.estimated_execution_seconds == pytest.approx(10.2)
        assert summary.mean_abs_locate_error_seconds == pytest.approx(0.5)

    def test_empty_stream_summary(self):
        summary = summarize_events([])
        assert summary.event_count == 0
        assert summary.mean_response_seconds is None
        assert summary.estimated_execution_seconds is None

    def test_summary_speaks_tabular_protocol(self):
        summary = summarize_events(sample_stream())
        assert summary.headers() == ["metric", "value"]
        records = summary.to_dict()
        assert len(records) == len(summary.rows())
        assert all(set(r) == {"metric", "value"} for r in records)

    def test_summary_exports_via_write_result(self, tmp_path):
        from repro.experiments.export import result_to_rows, write_result

        summary = summarize_events(sample_stream())
        assert result_to_rows(summary) == summary.to_dict()
        out = write_result(summary, tmp_path / "summary.csv")
        assert out.exists()
