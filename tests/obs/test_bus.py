"""The event bus: ordering, filtering, subscription lifecycle."""

import pytest

from repro.obs import EventBus, Subscription
from repro.obs.events import CacheHit, CacheMiss, QueueAdmitted


def hit(seconds=0.0, segment=1):
    return CacheHit(seconds=seconds, segment=segment, length=1)


def miss(seconds=0.0, segment=1):
    return CacheMiss(seconds=seconds, segment=segment, length=1)


class TestDelivery:
    def test_publish_order_preserved(self):
        bus = EventBus()
        seen = bus.collect()
        events = [hit(segment=i) for i in range(10)]
        for event in events:
            bus.publish(event)
        assert seen == events

    def test_subscription_order_preserved(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("first"))
        bus.subscribe(lambda e: order.append("second"))
        bus.publish(hit())
        assert order == ["first", "second"]

    def test_synchronous_on_publisher_stack(self):
        bus = EventBus()
        delivered = []
        bus.subscribe(delivered.append)
        event = hit()
        bus.publish(event)
        # Already delivered by the time publish returns.
        assert delivered == [event]

    def test_events_published_counts_unmatched(self):
        bus = EventBus()
        bus.subscribe(lambda e: None, kinds="cache.hit")
        bus.publish(miss())
        bus.publish(hit())
        assert bus.events_published == 2


class TestFiltering:
    def test_filter_by_name(self):
        bus = EventBus()
        hits = bus.collect("cache.hit")
        bus.publish(hit())
        bus.publish(miss())
        assert [e.name for e in hits] == ["cache.hit"]

    def test_filter_by_class(self):
        bus = EventBus()
        hits = bus.collect(CacheHit)
        bus.publish(hit())
        bus.publish(miss())
        assert len(hits) == 1 and isinstance(hits[0], CacheHit)

    def test_filter_by_iterable_of_both(self):
        bus = EventBus()
        seen = bus.collect(["cache.hit", CacheMiss])
        bus.publish(hit())
        bus.publish(miss())
        bus.publish(QueueAdmitted(seconds=0.0, segment=1, length=1,
                                  arrival_seconds=0.0, queue_depth=1))
        assert [e.name for e in seen] == ["cache.hit", "cache.miss"]

    def test_none_delivers_everything(self):
        bus = EventBus()
        seen = bus.collect()
        bus.publish(hit())
        bus.publish(miss())
        assert len(seen) == 2

    def test_bad_filter_entry_rejected(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(lambda e: None, kinds=[42])


class TestLifecycle:
    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        sub = bus.subscribe(seen.append)
        bus.publish(hit())
        sub.close()
        bus.publish(hit())
        assert len(seen) == 1

    def test_unsubscribe_idempotent(self):
        bus = EventBus()
        sub = bus.subscribe(lambda e: None)
        sub.close()
        sub.close()
        bus.unsubscribe(sub)
        assert bus.subscriber_count == 0

    def test_context_manager_detaches(self):
        bus = EventBus()
        seen = []
        with bus.subscribe(seen.append) as sub:
            assert isinstance(sub, Subscription)
            bus.publish(hit())
        bus.publish(hit())
        assert len(seen) == 1

    def test_handler_mutation_takes_effect_next_publish(self):
        bus = EventBus()
        late = []

        def add_late(event):
            bus.subscribe(late.append)

        bus.subscribe(add_late)
        bus.publish(hit())
        assert late == []  # snapshot: not delivered the current event
        second = hit(segment=2)
        bus.publish(second)
        assert late == [second]

    def test_handler_exceptions_propagate(self):
        bus = EventBus()

        def boom(event):
            raise RuntimeError("telemetry bug")

        bus.subscribe(boom)
        with pytest.raises(RuntimeError):
            bus.publish(hit())


class TestClock:
    def test_set_time_monotone(self):
        bus = EventBus()
        bus.set_time(10.0)
        bus.set_time(5.0)
        assert bus.now == 10.0
        bus.set_time(12.5)
        assert bus.now == 12.5
