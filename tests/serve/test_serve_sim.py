"""The serve-sim experiment: golden regression + gate semantics.

A small-config sweep is frozen as JSON under ``tests/serve/golden/``;
the comparison is exact (see ``tests/experiments/test_golden.py`` for
the regeneration workflow: ``--regen-golden``).
"""

import json
from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, serve_sim
from repro.serve import TenantLoadSpec

GOLDEN_DIR = Path(__file__).parent / "golden"

_TENANTS = tuple(
    TenantLoadSpec(
        name=spec.name,
        users=max(spec.users // 1000, 1),
        rate_per_hour=spec.rate_per_hour / 2,
        weight=spec.weight,
    )
    for spec in serve_sim.DEFAULT_TENANTS
)


def small_run():
    return serve_sim.run_point(
        ExperimentConfig(),
        drives=2,
        tenants=_TENANTS,
        horizon_hours=0.5,
    )


def test_golden(regen_golden):
    """The small sweep's records match the frozen fixture exactly."""
    points = small_run()
    result = serve_sim.ServeSweepResult(
        label="serve-sim", points=tuple(points)
    )
    records = json.loads(json.dumps(result.to_dict()))
    path = GOLDEN_DIR / "serve_sim.json"
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(records, indent=1) + "\n")
    if not path.exists():
        pytest.fail(
            f"golden fixture {path} is missing; generate it with "
            "pytest tests/serve/test_serve_sim.py --regen-golden"
        )
    frozen = json.loads(path.read_text())
    assert records == frozen, (
        "serve-sim output drifted from its golden fixture; if the "
        "change is intentional, rerun with --regen-golden"
    )


def test_run_is_deterministic():
    assert small_run() == small_run()


def test_smoke_sweep_passes_the_gate():
    result = serve_sim.run(smoke=True)
    assert result.all_complete
    assert result.slo_ok
    assert result.total_users == sum(
        spec.users for spec in serve_sim._SMOKE_TENANTS
    )
    # Smoke shrinks to one grid point.
    assert {p.drives for p in result.points} == {2}


def test_fair_share_orders_tenant_means():
    """With backpressure binding, the premium tier's mean wins.

    A tight backend depth keeps the fair queues backlogged, so the
    8:1 gold-over-batch weight shows up in the response times.
    """
    points = serve_sim.run_point(
        ExperimentConfig(),
        drives=2,
        tenants=_TENANTS,
        horizon_hours=0.5,
        backend_depth=2,
    )
    by_tenant = {p.tenant: p for p in points}
    gold = by_tenant["gold"].mean_response_seconds
    batch = by_tenant["batch"].mean_response_seconds
    assert gold is not None and batch is not None
    assert gold < batch


def test_export_is_json_safe():
    points = small_run()
    result = serve_sim.ServeSweepResult(
        label="serve-sim", points=tuple(points)
    )
    payload = json.dumps(result.to_dict())
    for record in json.loads(payload):
        assert record["lost"] == 0
        assert record["slo (s)"] is None or record["slo (s)"] > 0
