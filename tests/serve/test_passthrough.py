"""The pass-through guarantee.

A one-tenant gateway with no caps, no deadline, and no backpressure
must be a no-op: the backend serves exactly the schedule it would have
served bare, and the response-time samples are **bit-identical** —
`GatewayArrival` ranks before every backend event at the same instant,
so admission-and-release at arrival time leaves the backend's event
order untouched.
"""

import pytest

from repro.geometry import tiny_tape
from repro.library import MultiDriveSystem, poisson_library_stream
from repro.library.cartridge import Cartridge
from repro.scheduling import get_scheduler
from repro.serve import (
    Gateway,
    ServeConfig,
    ServeRequest,
    TenantConfig,
)


def shelf(count=3):
    return [
        Cartridge(f"tape-{index}", tiny_tape(seed=index + 1))
        for index in range(count)
    ]


def tagged_stream(cartridges, seed, rate=240.0, horizon=3600.0):
    """A Poisson library stream, re-tagged for the gateway."""
    requests = poisson_library_stream(
        [c.label for c in cartridges],
        rate_per_hour=rate,
        total_segments=cartridges[0].geometry.total_segments,
        seed=seed,
        horizon_seconds=horizon,
    )
    return requests, [
        ServeRequest(
            arrival_seconds=r.arrival_seconds,
            label=r.label,
            segment=r.segment,
            length=r.length,
            tenant="only",
        )
        for r in requests
    ]


@pytest.mark.parametrize("seed", [1, 7, 42])
@pytest.mark.parametrize("drives", [1, 2])
def test_bit_identical_to_bare_backend(seed, drives):
    cartridges = shelf()
    bare_requests, served_requests = tagged_stream(cartridges, seed)

    bare = MultiDriveSystem(cartridges, drives=drives)
    bare_stats = bare.run(bare_requests)

    backend = MultiDriveSystem(shelf(), drives=drives)
    gateway = Gateway(
        ServeConfig(tenants=(TenantConfig(name="only"),)),
        system=backend,
    )
    report = gateway.run(served_requests)

    assert backend.stats.samples == bare_stats.samples
    assert report.lost == 0
    assert report.completed + report.failed == len(bare_requests)


@pytest.mark.parametrize("algorithm", ["FIFO", "SORT", "LOSS"])
def test_bit_identical_across_schedulers(algorithm):
    cartridges = shelf(2)
    bare_requests, served_requests = tagged_stream(cartridges, seed=5)

    bare = MultiDriveSystem(
        cartridges, drives=2, scheduler=get_scheduler(algorithm)
    )
    bare_stats = bare.run(bare_requests)

    backend = MultiDriveSystem(
        shelf(2), drives=2, scheduler=get_scheduler(algorithm)
    )
    gateway = Gateway(
        ServeConfig(tenants=(TenantConfig(name="only"),)),
        system=backend,
    )
    gateway.run(served_requests)

    assert backend.stats.samples == bare_stats.samples
    assert len(backend.batches) == len(bare.batches)
