"""Gateway behavior: admission, shedding, backpressure, accounting.

The load-shedding invariant — **nothing is dropped silently** — is
property-checked: whatever the caps, deadlines, and workload, every
submitted request ends as a completion, a typed failure, or a typed
shed record, and the ledger adds up exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import (
    DeadlineExpired,
    ServeError,
    TenantOverloaded,
    UnknownTenant,
)
from repro.geometry import tiny_tape
from repro.library import MultiDriveSystem
from repro.library.cartridge import Cartridge
from repro.obs import EventBus
from repro.serve import (
    Gateway,
    ServeConfig,
    ServeRequest,
    TenantConfig,
)


def small_shelf(count=2):
    return [
        Cartridge(f"tape-{index}", tiny_tape(seed=index + 1))
        for index in range(count)
    ]


def make_gateway(tenants, shelf=None, drives=2, **config_kwargs):
    system = MultiDriveSystem(shelf or small_shelf(), drives=drives)
    return Gateway(
        ServeConfig(tenants=tenants, **config_kwargs), system=system
    )


def burst(tenant, count, label="tape-0", spacing=1.0, start=0.0):
    return [
        ServeRequest(
            arrival_seconds=start + index * spacing,
            label=label,
            segment=(index * 17) % 200,
            tenant=tenant,
        )
        for index in range(count)
    ]


class TestValidation:
    def test_unknown_tenant_rejected_upfront(self):
        gateway = make_gateway((TenantConfig(name="a"),))
        with pytest.raises(UnknownTenant):
            gateway.run(burst("nobody", 1))

    def test_unknown_label_rejected_upfront(self):
        gateway = make_gateway((TenantConfig(name="a"),))
        with pytest.raises(ServeError):
            gateway.run(burst("a", 1, label="tape-99"))

    def test_single_use(self):
        gateway = make_gateway((TenantConfig(name="a"),))
        gateway.run(burst("a", 3))
        with pytest.raises(ServeError):
            gateway.run(burst("a", 1))


class TestOutcomes:
    def test_all_complete_uncapped(self):
        gateway = make_gateway(
            (TenantConfig(name="a"), TenantConfig(name="b", weight=2.0))
        )
        report = gateway.run(burst("a", 20) + burst("b", 20))
        assert report.submitted == 40
        assert report.completed == 40
        assert report.shed == 0
        assert report.lost == 0
        assert report.all_accounted

    def test_overload_shed_is_typed(self):
        gateway = make_gateway(
            (TenantConfig(name="a", max_outstanding=5),)
        )
        # A same-instant burst: only 5 can be outstanding.
        requests = burst("a", 30, spacing=0.0)
        report = gateway.run(requests)
        stats = report.tenants[0]
        assert stats.shed == 25
        assert stats.completed == 5
        assert report.lost == 0
        assert len(gateway.shed) == 25
        for record in gateway.shed:
            assert isinstance(record.rejection, TenantOverloaded)
            assert record.rejection.kind == "overload"
            assert record.rejection.tenant == "a"

    def test_deadline_shed_is_typed(self):
        # One backend slot: queued requests age past their deadline.
        gateway = make_gateway(
            (TenantConfig(name="a", deadline_seconds=10.0),),
            drives=1,
            max_backend_depth=1,
        )
        report = gateway.run(burst("a", 12, spacing=0.0))
        stats = report.tenants[0]
        assert stats.shed > 0
        assert stats.completed + stats.failed + stats.shed == 12
        assert report.lost == 0
        assert all(
            isinstance(r.rejection, DeadlineExpired)
            for r in gateway.shed
        )

    def test_backpressure_bounds_backend_depth(self):
        depths = []
        gateway = make_gateway(
            (TenantConfig(name="a"),), max_backend_depth=3
        )
        original = gateway.system.submit

        def tracking_submit(request):
            index = original(request)
            depths.append(gateway._backend_depth)
            return index

        gateway.system.submit = tracking_submit
        report = gateway.run(burst("a", 40, spacing=0.0))
        assert report.completed == 40
        assert depths and max(depths) <= 3

    def test_weighted_release_order(self):
        """With one backend slot, releases follow the fair share."""
        released = []
        gateway = make_gateway(
            (
                TenantConfig(name="heavy", weight=2.0),
                TenantConfig(name="light", weight=1.0),
            ),
            max_backend_depth=1,
        )
        original = gateway.system.submit

        def tracking_submit(request):
            released.append(request.tenant)
            return original(request)

        gateway.system.submit = tracking_submit
        report = gateway.run(
            burst("heavy", 12, spacing=0.0)
            + burst("light", 12, spacing=0.0)
        )
        assert report.lost == 0
        head = released[:9]
        assert head.count("heavy") == 6
        assert head.count("light") == 3


class TestObservability:
    def test_serve_events_on_bus(self):
        bus = EventBus()
        kinds = []
        bus.subscribe(lambda e: kinds.append(e.name))
        system = MultiDriveSystem(small_shelf(), drives=1, bus=bus)
        gateway = Gateway(
            ServeConfig(
                tenants=(TenantConfig(name="a", max_outstanding=2),)
            ),
            system=system,
        )
        gateway.run(burst("a", 10, spacing=0.0))
        assert "serve.admit" in kinds
        assert "serve.release" in kinds
        assert "serve.complete" in kinds
        assert "serve.shed" in kinds

    def test_report_percentiles_none_without_completions(self):
        gateway = make_gateway(
            (TenantConfig(name="a"), TenantConfig(name="b"))
        )
        report = gateway.run(burst("a", 5))
        by_name = {t.name: t for t in report.tenants}
        assert by_name["b"].p999_seconds is None
        assert by_name["b"].slo_ok  # vacuously
        assert by_name["a"].p999_seconds is not None


class TestNeverSilent:
    @given(
        count_a=st.integers(0, 25),
        count_b=st.integers(0, 25),
        cap=st.one_of(st.none(), st.integers(1, 10)),
        deadline=st.sampled_from([5.0, 50.0, float("inf")]),
        depth=st.one_of(st.none(), st.integers(1, 4)),
        spacing=st.sampled_from([0.0, 2.0, 30.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_request_accounted(
        self, count_a, count_b, cap, deadline, depth, spacing
    ):
        """submitted == completed + failed + shed, for any config."""
        gateway = make_gateway(
            (
                TenantConfig(
                    name="a",
                    weight=3.0,
                    max_outstanding=cap,
                    deadline_seconds=deadline,
                ),
                TenantConfig(name="b"),
            ),
            max_backend_depth=depth,
        )
        report = gateway.run(
            burst("a", count_a, spacing=spacing)
            + burst("b", count_b, label="tape-1", spacing=spacing)
        )
        assert report.submitted == count_a + count_b
        assert report.lost == 0
        assert len(gateway.shed) == report.shed
        for tenant in report.tenants:
            assert (
                tenant.submitted
                == tenant.completed + tenant.failed + tenant.shed
            )
