"""Weighted fair queuing: the SFQ invariants, property-checked.

The two guarantees the gateway's fairness rests on (see the
``repro.serve.fair`` module docstring):

* **proportional share** — continuously backlogged tenants receive
  releases in proportion to their weights (within one release);
* **no starvation** — a backlogged tenant waits at most
  ``ceil(W / w)`` pops for its next release, whatever the others do.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ServeError
from repro.serve import WeightedFairQueues

#: Small weight vocabularies keep ratios exact in float arithmetic.
weight_sets = st.dictionaries(
    keys=st.sampled_from(["a", "b", "c", "d", "e"]),
    values=st.sampled_from([0.5, 1.0, 2.0, 4.0, 8.0]),
    min_size=1,
    max_size=5,
)


class TestBasics:
    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ServeError):
            WeightedFairQueues({})
        with pytest.raises(ServeError):
            WeightedFairQueues({"t": 0.0})

    def test_unknown_tenant(self):
        queues = WeightedFairQueues({"a": 1.0})
        with pytest.raises(ServeError):
            queues.push("b", 1)
        with pytest.raises(ServeError):
            queues.depth("b")

    def test_pop_empty_raises(self):
        queues = WeightedFairQueues({"a": 1.0})
        with pytest.raises(ServeError):
            queues.pop()

    def test_fifo_within_tenant(self):
        queues = WeightedFairQueues({"a": 1.0})
        for item in (10, 11, 12):
            queues.push("a", item)
        assert [queues.pop()[1] for _ in range(3)] == [10, 11, 12]

    def test_two_to_one_interleave(self):
        queues = WeightedFairQueues({"heavy": 2.0, "light": 1.0})
        for index in range(12):
            queues.push("heavy", index)
            queues.push("light", index)
        order = [queues.pop()[0] for _ in range(9)]
        # Start-fair 2:1 share: two heavy releases per light one.
        assert order.count("heavy") == 6
        assert order.count("light") == 3

    def test_idle_tenant_banks_no_credit(self):
        queues = WeightedFairQueues({"a": 1.0, "b": 1.0})
        for index in range(10):
            queues.push("a", index)
        for _ in range(8):
            queues.pop()
        # b was idle the whole time; on rejoining it gets its fair
        # interleave, not 8 banked back-to-back releases.
        for index in range(10):
            queues.push("b", index)
        order = [queues.pop()[0] for _ in range(4)]
        assert order.count("b") <= 3


class TestProperties:
    @given(weights=weight_sets, pops=st.integers(1, 120))
    @settings(max_examples=120, deadline=None)
    def test_proportional_share_under_backlog(self, weights, pops):
        """Backlogged tenants split releases by weight.

        The SFQ tag invariant (every finish tag lies within ``1/w`` of
        the virtual time) pins each tenant's count to
        ``[share - n, share + 1]`` for ``n`` tenants.
        """
        queues = WeightedFairQueues(weights)
        for name in weights:
            for item in range(200):
                queues.push(name, item)
        counts = dict.fromkeys(weights, 0)
        for _ in range(min(pops, len(queues))):
            name, _ = queues.pop()
            counts[name] += 1
        total = sum(counts.values())
        total_weight = sum(weights.values())
        slack = len(weights)
        for name, weight in weights.items():
            share = total * weight / total_weight
            assert share - slack - 1e-9 <= counts[name] <= share + 1 + 1e-9

    @given(weights=weight_sets, churn=st.integers(0, 50))
    @settings(max_examples=120, deadline=None)
    def test_no_starvation(self, weights, churn):
        """A backlogged tenant is served within ceil(W / w) pops."""
        victim = sorted(weights)[0]
        queues = WeightedFairQueues(weights)
        for name in weights:
            for item in range(300):
                queues.push(name, item)
        # Churn the queues to an arbitrary interior state first.
        for _ in range(churn):
            queues.pop()
        if queues.depth(victim) == 0:
            return
        total_weight = sum(weights.values())
        bound = math.ceil(total_weight / weights[victim]) + len(weights)
        for pop_count in range(1, bound + 1):
            name, _ = queues.pop()
            if name == victim:
                return
        raise AssertionError(
            f"{victim!r} not served within {bound} pops"
        )

    @given(weights=weight_sets)
    @settings(max_examples=60, deadline=None)
    def test_conservation(self, weights):
        """Every push is eventually popped exactly once."""
        queues = WeightedFairQueues(weights)
        pushed = []
        for index, name in enumerate(sorted(weights) * 7):
            queues.push(name, (name, index))
            pushed.append((name, index))
        popped = [queues.pop()[1] for _ in range(len(queues))]
        assert sorted(popped) == sorted(pushed)
        assert len(queues) == 0
