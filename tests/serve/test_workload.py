"""The multi-tenant load generator and its trace round-trip."""

import pytest

from repro.exceptions import ServeError, TraceError
from repro.serve import (
    TenantLoadSpec,
    load_serve_trace,
    save_serve_trace,
    zipf_serve_stream,
)

SPECS = (
    TenantLoadSpec(name="gold", users=500, rate_per_hour=60.0, weight=4.0),
    TenantLoadSpec(name="bulk", users=2000, rate_per_hour=120.0),
)
LABELS = ["tape-0", "tape-1", "tape-2"]


class TestSpecs:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "", "users": 1, "rate_per_hour": 1.0},
            {"name": "t", "users": 0, "rate_per_hour": 1.0},
            {"name": "t", "users": 1, "rate_per_hour": 0.0},
            {"name": "t", "users": 1, "rate_per_hour": 1.0, "zipf_alpha": 0.0},
            {"name": "t", "users": 1, "rate_per_hour": 1.0, "weight": 0.0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ServeError):
            TenantLoadSpec(**kwargs)

    def test_rejects_duplicate_tenants(self):
        spec = SPECS[0]
        with pytest.raises(ServeError):
            zipf_serve_stream((spec, spec), LABELS)

    def test_rejects_empty_labels(self):
        with pytest.raises(ServeError):
            zipf_serve_stream(SPECS, [])


class TestStream:
    def test_deterministic_per_seed(self):
        first = zipf_serve_stream(SPECS, LABELS, seed=3)
        second = zipf_serve_stream(SPECS, LABELS, seed=3)
        other = zipf_serve_stream(SPECS, LABELS, seed=4)
        assert first == second
        assert first != other

    def test_tenant_streams_are_order_independent(self):
        """Swapping spec order changes nothing per tenant."""
        forward = zipf_serve_stream(SPECS, LABELS, seed=3)
        backward = zipf_serve_stream(tuple(reversed(SPECS)), LABELS, seed=3)
        assert sorted(forward, key=repr) == sorted(backward, key=repr)

    def test_sorted_and_tagged(self):
        stream = zipf_serve_stream(SPECS, LABELS, seed=1)
        assert stream
        arrivals = [r.arrival_seconds for r in stream]
        assert arrivals == sorted(arrivals)
        assert {r.tenant for r in stream} <= {"gold", "bulk"}
        assert all(r.label in LABELS for r in stream)

    def test_horizon_truncates(self):
        stream = zipf_serve_stream(
            SPECS, LABELS, horizon_seconds=600.0, seed=1
        )
        assert all(r.arrival_seconds <= 600.0 for r in stream)

    def test_zipf_skew_concentrates_traffic(self):
        """A heavier alpha concentrates requests on fewer segments."""
        flat = zipf_serve_stream(
            (
                TenantLoadSpec(
                    name="t", users=5000, rate_per_hour=2000.0,
                    zipf_alpha=0.5,
                ),
            ),
            LABELS,
            seed=2,
        )
        skewed = zipf_serve_stream(
            (
                TenantLoadSpec(
                    name="t", users=5000, rate_per_hour=2000.0,
                    zipf_alpha=2.0,
                ),
            ),
            LABELS,
            seed=2,
        )
        distinct_flat = len({(r.label, r.segment) for r in flat})
        distinct_skewed = len({(r.label, r.segment) for r in skewed})
        assert distinct_skewed < distinct_flat


class TestTraceRoundTrip:
    def test_round_trip(self, tmp_path):
        stream = zipf_serve_stream(SPECS, LABELS, seed=9)
        path = tmp_path / "trace.jsonl"
        save_serve_trace(path, stream)
        assert load_serve_trace(path) == stream

    def test_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            load_serve_trace(path)

    def test_rejects_bad_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1.0, "tenant": "a"}\n')
        with pytest.raises(TraceError):
            load_serve_trace(path)

    def test_rejects_negative_arrival(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"t": -1.0, "tenant": "a", "label": "x", '
            '"segment": 0, "length": 1}\n'
        )
        with pytest.raises(TraceError):
            load_serve_trace(path)
