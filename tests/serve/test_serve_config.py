"""ServeConfig / TenantConfig validation."""

import math

import pytest

from repro.exceptions import ServeError
from repro.serve import ServeConfig, TenantConfig


class TestTenantConfig:
    def test_defaults(self):
        tenant = TenantConfig(name="gold")
        assert tenant.weight == 1.0
        assert tenant.max_outstanding is None
        assert math.isinf(tenant.deadline_seconds)
        assert math.isinf(tenant.slo_seconds)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "t", "weight": 0.0},
            {"name": "t", "weight": -1.0},
            {"name": "t", "weight": float("nan")},
            {"name": "t", "max_outstanding": 0},
            {"name": "t", "deadline_seconds": 0.0},
            {"name": "t", "deadline_seconds": float("nan")},
            {"name": "t", "slo_seconds": -5.0},
            {"name": "t", "slo_seconds": float("nan")},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ServeError):
            TenantConfig(**kwargs)


class TestServeConfig:
    def test_lookup_by_name(self):
        config = ServeConfig(
            tenants=(
                TenantConfig(name="gold", weight=4.0),
                TenantConfig(name="bronze"),
            )
        )
        assert config.tenant("gold").weight == 4.0
        with pytest.raises(ServeError):
            config.tenant("nobody")

    def test_tenants_coerced_to_tuple(self):
        config = ServeConfig(tenants=[TenantConfig(name="t")])
        assert isinstance(config.tenants, tuple)

    def test_rejects_empty_tenants(self):
        with pytest.raises(ServeError):
            ServeConfig(tenants=())

    def test_rejects_duplicate_names(self):
        with pytest.raises(ServeError):
            ServeConfig(
                tenants=(
                    TenantConfig(name="t"),
                    TenantConfig(name="t"),
                )
            )

    def test_rejects_bad_backend_depth(self):
        with pytest.raises(ServeError):
            ServeConfig(
                tenants=(TenantConfig(name="t"),),
                max_backend_depth=0,
            )
