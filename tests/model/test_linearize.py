"""Tests for the linearized locate-cost adapter."""

import numpy as np
import pytest

from repro.constants import SCAN_SECONDS_PER_SECTION
from repro.model import LinearizedModel, schedule_distance_matrix


@pytest.fixture()
def linear(tiny_model):
    return LinearizedModel(tiny_model)


class TestLinearizedModel:
    def test_cost_is_scan_speed_times_distance(self, tiny_model, linear):
        geometry = tiny_model.geometry
        for src, dst in ((0, 5), (5, 0), (3, 3), (1, 17)):
            expected = SCAN_SECONDS_PER_SECTION * abs(
                float(geometry.phys_of(dst)) - float(geometry.phys_of(src))
            )
            assert linear.locate_time(src, dst) == pytest.approx(expected)

    def test_symmetric(self, linear, rng):
        total = linear.geometry.total_segments
        pairs = rng.integers(0, total, size=(20, 2))
        for src, dst in pairs:
            assert linear.locate_time(
                int(src), int(dst)
            ) == pytest.approx(linear.locate_time(int(dst), int(src)))

    def test_zero_on_identical_segments(self, linear):
        assert linear.locate_time(7, 7) == pytest.approx(0.0)

    def test_vector_surfaces_agree(self, linear, rng):
        total = linear.geometry.total_segments
        source = int(rng.integers(0, total))
        destinations = rng.integers(0, total, size=16)
        batched = linear.locate_times(source, destinations)
        scalar = [
            linear.locate_time(source, int(d)) for d in destinations
        ]
        np.testing.assert_allclose(batched, scalar)
        paired = linear.times(
            np.full(16, source, dtype=np.int64), destinations
        )
        np.testing.assert_allclose(paired, scalar)
        matrix = linear.pairwise_times(
            np.asarray([source], dtype=np.int64), destinations
        )
        np.testing.assert_allclose(matrix[0], scalar)

    def test_travel_sections_is_phys_distance(self, linear, rng):
        total = linear.geometry.total_segments
        source = int(rng.integers(0, total))
        destinations = rng.integers(0, total, size=8)
        geometry = linear.geometry
        expected = np.abs(
            geometry.phys_of(destinations.astype(np.int64))
            - geometry.phys_of(source)
        )
        np.testing.assert_allclose(
            linear.travel_sections(source, destinations), expected
        )

    def test_rewind_is_linear(self, linear):
        geometry = linear.geometry
        seconds = linear.rewind_seconds(5)
        assert seconds == pytest.approx(
            float(geometry.phys_of(5)) * linear.seconds_per_section
        )

    def test_default_rate_comes_from_base_model(self, tiny_model):
        linear = LinearizedModel(tiny_model)
        assert linear.seconds_per_section == pytest.approx(
            tiny_model.scan_seconds_per_section
        )

    def test_custom_rate(self, tiny_model):
        linear = LinearizedModel(tiny_model, seconds_per_section=2.5)
        geometry = tiny_model.geometry
        assert linear.locate_time(0, 9) == pytest.approx(
            2.5 * abs(
                float(geometry.phys_of(9)) - float(geometry.phys_of(0))
            )
        )

    def test_oracle_matches_locate_times(self, linear, rng):
        total = linear.geometry.total_segments
        source = int(rng.integers(0, total))
        destinations = rng.integers(0, total, size=8)
        measure = linear.oracle()
        np.testing.assert_allclose(
            measure(source, destinations),
            linear.locate_times(source, destinations),
        )

    def test_lower_bounds_the_piecewise_model_locates(
        self, tiny_model, linear, rng
    ):
        """Linearization drops overheads: never above the true cost."""
        total = tiny_model.geometry.total_segments
        source = int(rng.integers(0, total))
        destinations = rng.integers(0, total, size=32)
        slack = tiny_model.reposition_seconds + tiny_model.reversal_seconds
        true_times = tiny_model.locate_times(source, destinations)
        lin_times = linear.locate_times(source, destinations)
        assert np.all(lin_times <= true_times + slack + 1e-9)

    def test_distance_matrix_builder_accepts_the_adapter(
        self, linear, rng
    ):
        total = linear.geometry.total_segments
        segments = rng.choice(total - 1, size=6, replace=False).astype(
            np.int64
        )
        matrix = schedule_distance_matrix(linear, 0, segments)
        assert matrix.shape == (7, 6)
        assert np.all(np.isinf(np.diag(matrix[1:])))

    def test_repr_mentions_rate(self, linear):
        assert "LinearizedModel" in repr(linear)
