"""Perturbation wrappers: even/odd error and ground-truth deviations."""

import numpy as np
import pytest

from repro.model import (
    EvenOddPerturbation,
    LocateTimeModel,
    ShortLocateDeviation,
)


class TestEvenOdd:
    def test_offsets_by_destination_parity(self, tiny_model, tiny):
        perturbed = EvenOddPerturbation(tiny_model, 3.0)
        destinations = np.arange(40, 60)
        base = tiny_model.locate_times(0, destinations)
        noisy = perturbed.locate_times(0, destinations)
        expected = np.maximum(
            0.0, base + np.where(destinations % 2 == 0, 3.0, -3.0)
        )
        np.testing.assert_allclose(noisy, expected)

    def test_never_negative(self, tiny_model):
        perturbed = EvenOddPerturbation(tiny_model, 1000.0)
        destinations = np.arange(1, 50)
        assert (perturbed.locate_times(0, destinations) >= 0.0).all()

    def test_total_over_any_permutation_is_constant(
        self, tiny_model, tiny, rng
    ):
        # The key Section 7 property: every request is a destination
        # exactly once, so the summed perturbation is order-independent
        # (which is why OPT is immune).
        perturbed = EvenOddPerturbation(tiny_model, 5.0)
        segments = rng.choice(tiny.total_segments, 10, replace=False)
        segments = segments[
            tiny_model.locate_times(0, segments) > 20.0
        ]  # keep away from the zero floor
        offsets = np.where(segments % 2 == 0, 5.0, -5.0)
        for _ in range(5):
            order = rng.permutation(segments.size)
            route = segments[order]
            sources = np.concatenate(([0], route[:-1] + 1))
            base = tiny_model.times(sources, route).sum()
            noisy = perturbed.times(sources, route).sum()
            assert noisy - base == pytest.approx(offsets.sum())

    def test_pairwise_consistent(self, tiny_model, rng):
        perturbed = EvenOddPerturbation(tiny_model, 2.0)
        sources = rng.integers(0, 100, 5)
        destinations = rng.integers(0, 100, 7)
        matrix = perturbed.pairwise_times(sources, destinations)
        for i, source in enumerate(sources):
            row = perturbed.locate_times(int(source), destinations)
            np.testing.assert_allclose(matrix[i], row)

    def test_geometry_passthrough(self, tiny_model, tiny):
        assert EvenOddPerturbation(tiny_model, 1.0).geometry is tiny


class TestShortLocateDeviation:
    def test_deterministic(self, tiny_model, rng):
        deviation = ShortLocateDeviation(tiny_model, seed=3)
        destinations = rng.integers(0, 100, 50)
        first = deviation.locate_times(0, destinations)
        second = deviation.locate_times(0, destinations)
        np.testing.assert_array_equal(first, second)

    def test_seeds_differ(self, tiny_model, rng):
        destinations = rng.integers(0, 100, 50)
        a = ShortLocateDeviation(tiny_model, seed=1).locate_times(
            0, destinations
        )
        b = ShortLocateDeviation(tiny_model, seed=2).locate_times(
            0, destinations
        )
        assert not np.array_equal(a, b)

    def test_bias_hits_only_short_locates(self, full_model, full_tape, rng):
        deviation = ShortLocateDeviation(
            full_model,
            short_seconds=30.0,
            bias_seconds=1.0,
            noise_seconds=0.0,
        )
        destinations = rng.integers(0, full_tape.total_segments, 3000)
        base = full_model.locate_times(0, destinations)
        measured = deviation.locate_times(0, destinations)
        short = base < 30.0
        np.testing.assert_allclose(measured[short], base[short] + 1.0)
        np.testing.assert_allclose(measured[~short], base[~short])

    def test_noise_is_bounded(self, tiny_model, rng):
        deviation = ShortLocateDeviation(
            tiny_model, bias_seconds=0.0, noise_seconds=0.5
        )
        destinations = rng.integers(0, 100, 500)
        base = tiny_model.locate_times(5, destinations)
        measured = deviation.locate_times(5, destinations)
        assert float(np.abs(measured - base).max()) <= 0.5 + 1e-9

    def test_oracle_roundtrip(self, tiny_model):
        deviation = ShortLocateDeviation(tiny_model)
        oracle = deviation.oracle()
        destinations = np.asarray([3, 5, 9])
        np.testing.assert_array_equal(
            oracle(0, destinations),
            deviation.locate_times(0, destinations),
        )

    def test_locate_time_scalar(self, tiny_model):
        deviation = ShortLocateDeviation(tiny_model)
        value = deviation.locate_time(0, 77)
        array = deviation.locate_times(0, np.asarray([77]))
        assert value == pytest.approx(float(array[0]))


def test_wrapper_requires_transform(tiny_model):
    from repro.model.perturb import ModelWrapper

    wrapper = ModelWrapper(tiny_model)
    with pytest.raises(NotImplementedError):
        wrapper.locate_times(0, np.asarray([1]))


def test_stacked_wrappers(tiny):
    base = LocateTimeModel(tiny)
    stacked = EvenOddPerturbation(
        ShortLocateDeviation(base, noise_seconds=0.0, bias_seconds=0.0),
        2.0,
    )
    destinations = np.arange(10, 20)
    expected = EvenOddPerturbation(base, 2.0).locate_times(0, destinations)
    np.testing.assert_allclose(
        stacked.locate_times(0, destinations), expected
    )
