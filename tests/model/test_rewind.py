"""Rewind-time model."""

import numpy as np
import pytest

from repro.constants import (
    REWIND_OVERHEAD_SECONDS,
    SCAN_SECONDS_PER_SECTION,
)
from repro.model import max_rewind_time, rewind_time


class TestRewind:
    def test_from_bot_is_just_overhead(self, tiny):
        assert float(rewind_time(tiny, 0)) == pytest.approx(
            REWIND_OVERHEAD_SECONDS, abs=0.5
        )

    def test_tracks_physical_position(self, tiny):
        segments = np.arange(tiny.total_segments)
        times = np.asarray(rewind_time(tiny, segments))
        expected = (
            REWIND_OVERHEAD_SECONDS
            + tiny.phys_of(segments) * SCAN_SECONDS_PER_SECTION
        )
        np.testing.assert_allclose(times, expected)

    def test_sawtooth_across_tracks(self, tiny):
        # Rewind rises along forward tracks and falls along reverse
        # tracks (Figure 1's dotted curve).
        forward = tiny.track_layout(0)
        segments = np.arange(
            forward.first_segment, forward.last_segment + 1
        )
        assert np.all(np.diff(rewind_time(tiny, segments)) > 0)
        reverse = tiny.track_layout(1)
        segments = np.arange(
            reverse.first_segment, reverse.last_segment + 1
        )
        assert np.all(np.diff(rewind_time(tiny, segments)) < 0)

    def test_max(self, tiny):
        bound = max_rewind_time(tiny)
        times = rewind_time(tiny, np.arange(tiny.total_segments))
        assert float(np.max(times)) <= bound
        assert bound == pytest.approx(
            REWIND_OVERHEAD_SECONDS + 14 * SCAN_SECONDS_PER_SECTION
        )
