"""Explicitly constructed instances of each locate-model case."""

import pytest

from repro.model import LocateCase, classify


def seg(tape, track, section, offset=0):
    return tape.segment_at(track, section, offset)


class TestEachCaseConstructed:
    def test_case1_same_section(self, full_tape):
        a = seg(full_tape, 4, 6, 1)
        b = seg(full_tape, 4, 6, 30)
        assert classify(full_tape, a, b) is LocateCase.READ_THROUGH

    def test_case2_same_track_far_forward(self, full_tape):
        a = seg(full_tape, 4, 2)
        b = seg(full_tape, 4, 9)
        assert classify(full_tape, a, b) is LocateCase.CO_SCAN_FORWARD

    def test_case2_codirectional_forward(self, full_tape):
        # Track 4 and track 6 are co-directional; destination more than
        # one section ahead physically.
        a = seg(full_tape, 4, 3)
        b = seg(full_tape, 6, 8)
        assert classify(full_tape, a, b) is LocateCase.CO_SCAN_FORWARD

    def test_case3_same_track_backward(self, full_tape):
        a = seg(full_tape, 4, 10)
        b = seg(full_tape, 4, 5)
        assert classify(full_tape, a, b) is LocateCase.CO_SCAN_BACKWARD

    def test_case3_codirectional_small_forward(self, full_tape):
        # "Forwards up to one section" in a co-directional track.
        a = seg(full_tape, 4, 7, 10)
        b = seg(full_tape, 6, 7, 40)
        assert classify(full_tape, a, b) is LocateCase.CO_SCAN_BACKWARD

    def test_case4_backward_to_track_start(self, full_tape):
        a = seg(full_tape, 4, 10)
        b = seg(full_tape, 4, 1)
        assert classify(full_tape, a, b) is LocateCase.CO_TRACK_START

    def test_case5_anti_far_forward(self, full_tape):
        # From a forward track near BOT to a reverse-track destination
        # whose *segment-order* forward direction is toward BOT: pick a
        # destination the head reaches by moving 2+ sections in the
        # reverse track's direction of travel (toward BOT).
        a = seg(full_tape, 4, 9)
        b = seg(full_tape, 5, 3)  # reverse track, physically behind
        assert classify(full_tape, a, b) is LocateCase.ANTI_SCAN_FORWARD

    def test_case6_anti_backward(self, full_tape):
        # Reverse-track destination physically ahead of the source:
        # reached by reversing (scan against the destination track's
        # travel), not into its first two ordinal sections.
        a = seg(full_tape, 4, 3)
        b = seg(full_tape, 5, 8)  # ordinal section 13-8=5, reversing
        assert classify(full_tape, a, b) is LocateCase.ANTI_SCAN_BACKWARD

    def test_case7_anti_to_track_start(self, full_tape):
        # Destination in the reverse track's first ordinal sections
        # (physical sections 13/12), reached by reversing.
        a = seg(full_tape, 4, 3)
        b = seg(full_tape, 5, 13)
        assert classify(full_tape, a, b) is LocateCase.ANTI_TRACK_START


class TestCaseTimeConsistency:
    @pytest.mark.parametrize(
        "src,dst",
        [
            ((4, 6, 1), (4, 6, 30)),
            ((4, 2, 0), (4, 9, 0)),
            ((4, 10, 0), (4, 5, 0)),
            ((4, 10, 0), (4, 1, 0)),
            ((4, 9, 0), (5, 3, 0)),
            ((4, 3, 0), (5, 8, 0)),
            ((4, 3, 0), (5, 13, 0)),
        ],
    )
    def test_all_cases_cost_sane(self, full_tape, full_model, src, dst):
        a = seg(full_tape, *src)
        b = seg(full_tape, *dst)
        time = full_model.locate_time(a, b)
        assert 0.0 <= time <= 185.0
