"""Head-travel accounting on the locate model."""

import numpy as np
import pytest

from repro.drive import FaultyModel
from repro.model import EvenOddPerturbation, ShortLocateDeviation


class TestTravelSections:
    def test_at_least_direct_distance(self, full_model, full_tape, rng):
        sources = rng.integers(0, full_tape.total_segments, 2000)
        destinations = rng.integers(0, full_tape.total_segments, 2000)
        travel = full_model.travel_sections(sources, destinations)
        direct = np.abs(
            full_tape.phys_of(destinations) - full_tape.phys_of(sources)
        )
        assert (travel >= direct - 1e-9).all()

    def test_read_through_is_exactly_direct(self, full_model, full_tape):
        layout = full_tape.track_layout(2).section_layout(5)
        source = layout.first_segment
        destination = layout.first_segment + 40
        travel = float(
            full_model.travel_sections(
                source, np.asarray([destination])
            )[0]
        )
        direct = abs(
            float(full_tape.phys_of(destination))
            - float(full_tape.phys_of(source))
        )
        assert travel == pytest.approx(direct)

    def test_bounded_by_tape_length_plus_overshoot(
        self, full_model, full_tape, rng
    ):
        sources = rng.integers(0, full_tape.total_segments, 2000)
        destinations = rng.integers(0, full_tape.total_segments, 2000)
        travel = full_model.travel_sections(sources, destinations)
        # Scan across the tape plus at most ~3 sections of read-in.
        assert float(travel.max()) <= 14.0 + 3.0

    def test_self_travel_zero(self, full_model):
        assert float(
            full_model.travel_sections(123, np.asarray([123]))[0]
        ) == 0.0

    @pytest.mark.parametrize(
        "wrapper",
        [
            lambda m: EvenOddPerturbation(m, 5.0),
            lambda m: ShortLocateDeviation(m),
            lambda m: FaultyModel(m, retry_probability=0.2),
        ],
    )
    def test_wrappers_pass_travel_through(self, full_model, rng, wrapper):
        wrapped = wrapper(full_model)
        destinations = rng.integers(
            0, full_model.geometry.total_segments, 100
        )
        np.testing.assert_array_equal(
            wrapped.travel_sections(0, destinations),
            full_model.travel_sections(0, destinations),
        )
