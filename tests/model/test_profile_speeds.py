"""LocateTimeModel with non-default transport speeds."""

import numpy as np
import pytest

from repro.constants import SEGMENT_TRANSFER_SECONDS
from repro.model import LocateTimeModel
from repro.scheduling import (
    LossScheduler,
    SortScheduler,
    execute_schedule,
)
from repro.drive import SimulatedDrive


@pytest.fixture(scope="module")
def fast_model(tiny):
    # A drive exactly twice as fast in every transport respect.
    return LocateTimeModel(
        tiny,
        reposition_seconds=1.0,
        reversal_seconds=1.0,
        read_seconds_per_section=15.5 / 2,
        scan_seconds_per_section=10.0 / 2,
    )


class TestSpeedScaling:
    def test_locates_scale_with_speed(self, tiny, tiny_model, fast_model,
                                      rng):
        sources = rng.integers(0, tiny.total_segments, 300)
        destinations = rng.integers(0, tiny.total_segments, 300)
        slow = tiny_model.times(sources, destinations)
        fast = fast_model.times(sources, destinations)
        # Everything halves (overheads included, chosen so above).
        np.testing.assert_allclose(fast, slow / 2, rtol=1e-9)

    def test_transfer_derived_from_read_speed(self, fast_model):
        assert fast_model.segment_transfer_seconds == pytest.approx(
            SEGMENT_TRANSFER_SECONDS / 2
        )

    def test_transfer_override(self, tiny):
        model = LocateTimeModel(tiny, segment_transfer_seconds=0.001)
        assert model.segment_transfer_seconds == 0.001

    def test_rewind_scales(self, tiny, tiny_model, fast_model):
        segment = tiny.total_segments - 1
        slow = float(tiny_model.rewind_seconds(segment))
        fast = float(fast_model.rewind_seconds(segment))
        # Rewind = overhead + scan; only the scan part halves.
        assert fast < slow
        assert fast > slow / 2 - 1.0


class TestEndToEndWithCustomSpeeds:
    def test_drive_uses_model_speeds(self, fast_model, tiny_model, rng):
        batch = rng.choice(
            fast_model.geometry.total_segments, 12, replace=False
        ).tolist()
        fast_schedule = SortScheduler().schedule(fast_model, 0, batch)
        slow_schedule = SortScheduler().schedule(tiny_model, 0, batch)
        fast_time = execute_schedule(
            SimulatedDrive(fast_model), fast_schedule
        ).total_seconds
        slow_time = execute_schedule(
            SimulatedDrive(tiny_model), slow_schedule
        ).total_seconds
        assert fast_time == pytest.approx(slow_time / 2, rel=1e-6)

    def test_estimates_match_execution_with_custom_speeds(
        self, fast_model, rng
    ):
        batch = rng.choice(
            fast_model.geometry.total_segments, 10, replace=False
        ).tolist()
        schedule = LossScheduler().schedule(fast_model, 0, batch)
        measured = execute_schedule(
            SimulatedDrive(fast_model), schedule
        ).total_seconds
        assert measured == pytest.approx(
            schedule.estimated_seconds, rel=1e-9
        )

    def test_whole_tape_plan_profile_aware(self, fast_model, tiny_model):
        from repro.scheduling import ReadEntireTapeScheduler

        fast = ReadEntireTapeScheduler().schedule(fast_model, 0, [1])
        slow = ReadEntireTapeScheduler().schedule(tiny_model, 0, [1])
        # Transfer and rewind halve; the per-track turnaround constant
        # does not, and dominates on a tiny tape — so just strictly
        # faster here (the 2x shows up on full-size cartridges).
        assert fast.estimated_seconds < slow.estimated_seconds
