"""The 7-way prose classifier and its agreement with the model."""

import numpy as np
import pytest

from repro.model import LocateCase, classify
from repro.model.locate import LocateTimeModel


@pytest.fixture(scope="module")
def sample_pairs(full_tape):
    rng = np.random.default_rng(7)
    sources = rng.integers(0, full_tape.total_segments, 3000)
    destinations = rng.integers(0, full_tape.total_segments, 3000)
    return list(zip(sources.tolist(), destinations.tolist()))


class TestCoverage:
    def test_all_cases_reachable(self, full_tape, sample_pairs):
        seen = {
            classify(full_tape, source, destination)
            for source, destination in sample_pairs
        }
        assert seen == set(LocateCase)


class TestCase1:
    def test_same_section_forward(self, full_tape):
        layout = full_tape.track_layout(0).section_layout(4)
        case = classify(
            full_tape, layout.first_segment, layout.first_segment + 5
        )
        assert case is LocateCase.READ_THROUGH

    def test_two_sections_ahead_still_read_through(self, full_tape):
        near = full_tape.track_layout(0).section_layout(4)
        far = full_tape.track_layout(0).section_layout(6)
        case = classify(
            full_tape, near.first_segment + 1, far.first_segment + 1
        )
        assert case is LocateCase.READ_THROUGH

    def test_three_sections_ahead_scans(self, full_tape):
        near = full_tape.track_layout(0).section_layout(4)
        far = full_tape.track_layout(0).section_layout(7)
        case = classify(
            full_tape, near.first_segment, far.first_segment + 1
        )
        assert case is LocateCase.CO_SCAN_FORWARD

    def test_backward_is_never_read_through(self, full_tape):
        layout = full_tape.track_layout(0).section_layout(4)
        case = classify(
            full_tape, layout.first_segment + 5, layout.first_segment
        )
        assert case is not LocateCase.READ_THROUGH


class TestTrackStartCases:
    def test_co_directional_back_to_first_section(self, full_tape):
        source = full_tape.track_layout(2).section_layout(10)
        destination = full_tape.track_layout(2).section_layout(1)
        case = classify(
            full_tape, source.first_segment, destination.first_segment
        )
        assert case is LocateCase.CO_TRACK_START

    def test_anti_directional_back_to_first_section(self, full_tape):
        # Source in forward track near BOT; destination in a reverse
        # track's last-written sections (also near BOT physically).
        source = full_tape.track_layout(0).section_layout(1)
        destination_track = full_tape.track_layout(1)
        destination = destination_track.section_layout(0)  # ordinal 13?
        # Physical section 0 of a reverse track is its final ordinal
        # section -- NOT a track-start case.  Use ordinal sections 0/1,
        # i.e. physical 13/12, reached by reversing.
        far = destination_track.section_layout(13)
        case = classify(full_tape, source.first_segment + 100,
                        far.first_segment)
        assert case in (
            LocateCase.ANTI_TRACK_START,
            LocateCase.ANTI_SCAN_FORWARD,
        )
        assert destination.first_segment  # silence unused warning


class TestModelAgreement:
    def test_read_through_means_no_reposition(
        self, full_tape, full_model, sample_pairs
    ):
        # Case 1 pairs cost strictly less than the reposition constant
        # plus a section of read -- they never scan.
        for source, destination in sample_pairs[:400]:
            case = classify(full_tape, source, destination)
            time = full_model.locate_time(source, destination)
            if case is LocateCase.READ_THROUGH:
                distance = abs(
                    float(full_tape.phys_of(destination))
                    - float(full_tape.phys_of(source))
                )
                assert time == pytest.approx(15.5 * distance)

    def test_scan_forward_cases_have_forward_targets(
        self, full_tape, sample_pairs
    ):
        # For CO_SCAN_FORWARD / ANTI_SCAN_FORWARD the scan target lies
        # at or beyond the source in the physical direction of travel
        # toward the destination.
        checked = 0
        for source, destination in sample_pairs:
            case = classify(full_tape, source, destination)
            if case not in (
                LocateCase.CO_SCAN_FORWARD,
                LocateCase.ANTI_SCAN_FORWARD,
            ):
                continue
            source_phys = float(full_tape.phys_of(source))
            target = float(full_tape.scan_target_phys(destination))
            direction = int(full_tape.direction_of(destination))
            assert (target - source_phys) * direction >= -2.0
            checked += 1
        assert checked > 20

    def test_track_start_cases_target_track_beginning(
        self, full_tape, sample_pairs
    ):
        for source, destination in sample_pairs:
            case = classify(full_tape, source, destination)
            if case not in (
                LocateCase.CO_TRACK_START,
                LocateCase.ANTI_TRACK_START,
            ):
                continue
            track = int(full_tape.track_of(destination))
            start_phys = float(full_tape.key_point_phys(track)[0])
            assert float(
                full_tape.scan_target_phys(destination)
            ) == pytest.approx(start_phys)


class TestValidation:
    def test_out_of_range_rejected(self, full_tape):
        with pytest.raises(Exception):
            classify(full_tape, 0, full_tape.total_segments)


def test_custom_model_overheads_do_not_change_classification(full_tape):
    # classify() is pure geometry; models with different constants agree.
    model_a = LocateTimeModel(full_tape, reposition_seconds=0.0)
    model_b = LocateTimeModel(full_tape, reposition_seconds=9.0)
    assert model_a.geometry is model_b.geometry
