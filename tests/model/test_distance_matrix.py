"""Distance-matrix construction for the TSP-style schedulers."""

import numpy as np
import pytest

from repro.model.distance_matrix import (
    out_positions,
    schedule_distance_matrix,
)


class TestOutPositions:
    def test_single_segment_reads(self, tiny):
        segments = np.asarray([0, 5, 10])
        out = out_positions(segments, 1, tiny.total_segments)
        np.testing.assert_array_equal(out, [1, 6, 11])

    def test_multi_segment_reads(self, tiny):
        segments = np.asarray([0, 5])
        out = out_positions(segments, np.asarray([3, 7]),
                            tiny.total_segments)
        np.testing.assert_array_equal(out, [3, 12])

    def test_clamped_at_end_of_data(self, tiny):
        last = tiny.total_segments - 1
        out = out_positions(np.asarray([last]), 1, tiny.total_segments)
        assert int(out[0]) == last


class TestScheduleDistanceMatrix:
    def test_shape_and_diagonal(self, tiny_model, rng):
        segments = rng.choice(
            tiny_model.geometry.total_segments, 8, replace=False
        )
        matrix = schedule_distance_matrix(tiny_model, 0, segments)
        assert matrix.shape == (9, 8)
        diag = matrix[np.arange(1, 9), np.arange(8)]
        assert np.isinf(diag).all()

    def test_row_zero_is_from_origin(self, tiny_model, rng):
        segments = rng.choice(
            tiny_model.geometry.total_segments, 6, replace=False
        )
        origin = 17
        matrix = schedule_distance_matrix(tiny_model, origin, segments)
        expected = tiny_model.locate_times(origin, segments)
        np.testing.assert_allclose(matrix[0], expected)

    def test_inner_rows_are_from_out_positions(self, tiny_model, rng):
        segments = rng.choice(
            tiny_model.geometry.total_segments, 6, replace=False
        )
        matrix = schedule_distance_matrix(tiny_model, 0, segments)
        for i, segment in enumerate(segments):
            expected = tiny_model.locate_times(int(segment) + 1, segments)
            expected[i] = np.inf
            np.testing.assert_allclose(matrix[i + 1], expected)

    def test_chunking_is_equivalent(self, tiny_model, rng):
        segments = rng.choice(
            tiny_model.geometry.total_segments, 20, replace=False
        )
        whole = schedule_distance_matrix(tiny_model, 0, segments)
        chunked = schedule_distance_matrix(
            tiny_model, 0, segments, chunk_rows=3
        )
        np.testing.assert_array_equal(whole, chunked)

    def test_lengths_shift_out_positions(self, tiny_model):
        segments = np.asarray([10, 50])
        matrix = schedule_distance_matrix(
            tiny_model, 0, segments, lengths=np.asarray([5, 1])
        )
        expected = tiny_model.locate_time(15, 50)
        assert matrix[1, 1] == pytest.approx(expected)
