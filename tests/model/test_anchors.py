"""Calibration of the reconstructed model against the paper's anchors.

These are the published aggregate measurements of Section 3, Section 4
(READ) and Section 7 of the paper; the model's constants were chosen so
all of them land inside the tolerance bands asserted here.  If a change
to the geometry or the model moves any anchor out of band, the
reproduction of every downstream figure is suspect.
"""

import numpy as np

from repro.constants import (
    PAPER_FORWARD_DIP_SECONDS,
    PAPER_FULL_READ_SECONDS,
    PAPER_MAX_LOCATE_SECONDS,
    PAPER_MEAN_LOCATE_FROM_BOT_SECONDS,
    PAPER_MEAN_LOCATE_RANDOM_SECONDS,
    PAPER_REVERSE_DIP_SECONDS,
)
from repro.drive import SimulatedDrive
from repro.model.rewind import max_rewind_time


class TestAggregateAnchors:
    def test_mean_locate_from_bot(self, full_model, full_tape, rng):
        destinations = rng.integers(0, full_tape.total_segments, 60_000)
        mean = float(full_model.locate_times(0, destinations).mean())
        assert (
            abs(mean - PAPER_MEAN_LOCATE_FROM_BOT_SECONDS)
            < 0.06 * PAPER_MEAN_LOCATE_FROM_BOT_SECONDS
        )

    def test_mean_locate_random_to_random(self, full_model, full_tape, rng):
        sources = rng.integers(0, full_tape.total_segments, 60_000)
        destinations = rng.integers(0, full_tape.total_segments, 60_000)
        mean = float(full_model.times(sources, destinations).mean())
        assert (
            abs(mean - PAPER_MEAN_LOCATE_RANDOM_SECONDS)
            < 0.06 * PAPER_MEAN_LOCATE_RANDOM_SECONDS
        )

    def test_max_locate(self, full_model, full_tape, rng):
        worst = 0.0
        for source in rng.integers(0, full_tape.total_segments, 24):
            times = full_model.locate_times(
                int(source), rng.integers(0, full_tape.total_segments, 4000)
            )
            worst = max(worst, float(times.max()))
        assert 150.0 < worst < PAPER_MAX_LOCATE_SECONDS + 15.0

    def test_full_read_and_rewind(self, full_model):
        drive = SimulatedDrive(full_model)
        total = drive.read_entire_tape()
        assert abs(total - PAPER_FULL_READ_SECONDS) < 450.0

    def test_max_rewind_under_locate_max(self, full_tape):
        assert max_rewind_time(full_tape) < PAPER_MAX_LOCATE_SECONDS


class TestSawtoothAnchors:
    def test_dip_counts_and_magnitudes(self, full_model, full_tape):
        curve = full_model.locate_times(
            0, np.arange(full_tape.total_segments)
        )
        diffs = np.diff(curve)
        drops = -diffs[diffs < -2.5]
        # 13 dips per track plus track-boundary drops, minus the blind
        # spots near the source; ~830 total on a 64-track tape.
        assert 700 < drops.size < 1000
        forward = drops[drops < 12.0]
        reverse = drops[drops >= 12.0]
        assert abs(
            float(np.median(forward)) - PAPER_FORWARD_DIP_SECONDS
        ) < 1.5
        assert abs(
            float(np.median(reverse)) - PAPER_REVERSE_DIP_SECONDS
        ) < 2.5

    def test_about_300_large_drops_per_source(self, full_model, full_tape,
                                              rng):
        # Paper: "for most source segments x, there exist approximately
        # 300 destination segments y such that locate_time(x, y-1)
        # exceeds locate_time(x, y) by about 25 seconds."  Our model
        # shows the ~25 s signature at every reverse-track boundary
        # (~416); same order of magnitude.
        source = int(rng.integers(0, full_tape.total_segments))
        curve = full_model.locate_times(
            source, np.arange(full_tape.total_segments)
        )
        diffs = np.diff(curve)
        big = ((diffs < -20.0) & (diffs > -32.0)).sum()
        assert 200 < big < 600
