"""Core locate-time model behaviour."""

import numpy as np
import pytest

from repro.constants import (
    READ_SECONDS_PER_SECTION,
    REPOSITION_SECONDS,
)
from repro.model import LocateTimeModel


class TestBasics:
    def test_self_locate_is_free(self, tiny_model, tiny):
        for segment in (0, 17, tiny.total_segments - 1):
            assert tiny_model.locate_time(segment, segment) == 0.0

    def test_nonnegative_everywhere(self, tiny_model, tiny, rng):
        sources = rng.integers(0, tiny.total_segments, 200)
        destinations = rng.integers(0, tiny.total_segments, 200)
        times = tiny_model.times(sources, destinations)
        assert (times >= 0.0).all()

    def test_next_segment_is_cheap(self, tiny_model, tiny):
        # Reading straight ahead to the next segment costs a fraction
        # of a second (pure read-through), not a reposition.
        layout = tiny.track_layout(0).section_layout(4)
        segment = layout.first_segment + 2
        assert tiny_model.locate_time(segment, segment + 1) < 2.0

    def test_scalar_matches_vector(self, tiny_model, tiny, rng):
        source = 5
        destinations = rng.integers(0, tiny.total_segments, 64)
        vector = tiny_model.locate_times(source, destinations)
        scalars = [
            tiny_model.locate_time(source, int(d)) for d in destinations
        ]
        np.testing.assert_allclose(vector, scalars)

    def test_pairwise_matches_elementwise(self, tiny_model, tiny, rng):
        sources = rng.integers(0, tiny.total_segments, 12)
        destinations = rng.integers(0, tiny.total_segments, 9)
        matrix = tiny_model.pairwise_times(sources, destinations)
        assert matrix.shape == (12, 9)
        for i, source in enumerate(sources):
            for j, destination in enumerate(destinations):
                assert matrix[i, j] == pytest.approx(
                    tiny_model.locate_time(int(source), int(destination))
                )

    def test_oracle_adapter(self, tiny_model):
        oracle = tiny_model.oracle()
        destinations = np.asarray([1, 2, 3])
        np.testing.assert_array_equal(
            oracle(0, destinations),
            tiny_model.locate_times(0, destinations),
        )


class TestReadThrough:
    def test_case1_is_linear_in_distance(self, full_model, full_tape):
        # Within the read-ahead window the time is physical distance at
        # read speed, with no constant.
        layout = full_tape.track_layout(2).section_layout(5)
        base = layout.first_segment
        distances = np.asarray([1, 10, 100, 500])
        times = full_model.locate_times(base, base + distances)
        per_segment = READ_SECONDS_PER_SECTION / layout.size
        np.testing.assert_allclose(
            times, distances * per_segment, rtol=0.2
        )

    def test_case1_asymmetry(self, full_model, full_tape):
        # Reading ahead is cheap; going back even one segment needs a
        # reposition-and-scan.
        layout = full_tape.track_layout(2).section_layout(5)
        segment = layout.first_segment + 10
        forward = full_model.locate_time(segment, segment + 1)
        backward = full_model.locate_time(segment + 1, segment)
        assert forward < 1.0
        assert backward > REPOSITION_SECONDS


class TestAsymmetry:
    def test_locate_is_asymmetric(self, full_model, rng):
        # The paper: locate(x, y) typically differs from locate(y, x)
        # by tens of seconds.
        total = full_model.geometry.total_segments
        sources = rng.integers(0, total, 500)
        destinations = rng.integers(0, total, 500)
        forward = full_model.times(sources, destinations)
        backward = full_model.times(destinations, sources)
        gap = np.abs(forward - backward)
        assert float(np.median(gap)) > 5.0


class TestStructure:
    def test_sawtooth_within_reverse_track_from_bot(
        self, full_model, full_tape
    ):
        # From BOT, destinations within one reverse-track section get
        # *more* expensive with segment number (read-in grows), then
        # drop ~25 s at the boundary.
        # Sample ordinal sections 2..4 of the reverse track (the first
        # two sections share a scan target, so their boundary is
        # smooth by design).
        layout = full_tape.track_layout(1)
        segments = np.arange(
            layout.first_segment + 1500, layout.first_segment + 3300
        )
        curve = full_model.locate_times(0, segments)
        diffs = np.diff(curve)
        assert (diffs > 0).sum() > 0.9 * diffs.size
        assert diffs.min() < -20.0

    def test_dips_are_one_segment_past_peaks(self, full_model, full_tape):
        # "Each dip is exactly one segment beyond a peak: the drop from
        # peak to dip is abrupt."
        curve = full_model.locate_times(
            0, np.arange(0, full_tape.total_segments // 8)
        )
        diffs = np.diff(curve)
        dips = np.flatnonzero(diffs < -2.5) + 1
        assert dips.size > 0
        for dip in dips[:20]:
            peak = dip - 1
            # The peak is a local maximum.
            assert curve[peak] > curve[peak - 1]
            assert curve[peak] > curve[dip]

    def test_custom_overheads_respected(self, tiny):
        slow = LocateTimeModel(
            tiny, reposition_seconds=50.0, reversal_seconds=0.0
        )
        fast = LocateTimeModel(
            tiny, reposition_seconds=0.0, reversal_seconds=0.0
        )
        # Any non-read-through locate differs by exactly the reposition.
        source, destination = 0, tiny.total_segments - 1
        assert slow.locate_time(source, destination) == pytest.approx(
            fast.locate_time(source, destination) + 50.0
        )
