"""Single-drive equivalence: the kernel reproduces the paper's loop.

A 1-drive, 1-cartridge :class:`~repro.library.MultiDriveSystem` with
the cartridge preloaded must be **bit-identical** to the single-drive
:class:`~repro.online.TertiaryStorageSystem` on the same workload —
same response-time samples, same batch boundaries, same failure set.
This is the contract that lets the multi-drive kernel claim it
*generalizes* the paper's serving loop rather than approximating it.

The comparison is exact (``==`` on floats): both paths are
deterministic, so any divergence is an ordering or accounting bug in
the event kernel, not noise.  A fixed workload is additionally frozen
as a golden JSON fixture (regenerate with ``--regen-golden`` after an
intentional change).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import tiny_tape
from repro.library import Cartridge, LibraryRequest, MultiDriveSystem
from repro.online import BatchPolicy, TertiaryStorageSystem
from repro.resilience import FaultPlan
from repro.scheduling import get_scheduler
from repro.workload.arrivals import TimedRequest

GOLDEN_PATH = Path(__file__).parent / "golden" / "equivalence.json"

LABEL = "only"


def workload(seed, count, horizon_seconds, total_segments):
    """A deterministic request stream (arrival-sorted, uniform targets)."""
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, horizon_seconds, size=count))
    segments = rng.integers(0, total_segments, size=count)
    return [
        LibraryRequest(
            arrival_seconds=float(arrivals[k]),
            label=LABEL,
            segment=int(segments[k]),
        )
        for k in range(count)
    ]


def run_both(requests, geometry, algorithm="LOSS", policy=None,
             fault_plan=None):
    """Run the same workload through both serving paths."""
    policy = policy or BatchPolicy(max_batch=16)
    single = TertiaryStorageSystem(
        geometry=geometry,
        scheduler=get_scheduler(algorithm),
        policy=policy,
        fault_plan=fault_plan,
    )
    multi = MultiDriveSystem(
        [Cartridge(LABEL, geometry)],
        drives=1,
        scheduler=get_scheduler(algorithm),
        policy=policy,
        fault_plan=fault_plan,
        preload=[LABEL],
    )
    single_stats = single.run(
        [request.timed() for request in requests]
    )
    multi_stats = multi.run(requests)
    return single, single_stats, multi, multi_stats


class TestSingleDriveEquivalence:
    @given(workload_seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=12, deadline=None)
    def test_samples_are_bit_identical(self, workload_seed):
        geometry = tiny_tape(seed=3)
        requests = workload(
            workload_seed, count=30, horizon_seconds=2000.0,
            total_segments=geometry.total_segments,
        )
        _, single_stats, multi, multi_stats = run_both(
            requests, geometry
        )
        assert multi_stats.samples == single_stats.samples
        assert multi.exchanges == 0
        assert multi.lost == 0

    @pytest.mark.parametrize("algorithm", ["FIFO", "SLTF", "SCAN", "LOSS"])
    def test_holds_for_every_scheduler(self, algorithm):
        geometry = tiny_tape(seed=5)
        requests = workload(
            7, count=24, horizon_seconds=1500.0,
            total_segments=geometry.total_segments,
        )
        single, single_stats, multi, multi_stats = run_both(
            requests, geometry, algorithm=algorithm
        )
        assert multi_stats.samples == single_stats.samples
        assert [r.size for r in multi.batches] == [
            r.size for r in single.batches
        ]
        assert [r.start_seconds for r in multi.batches] == [
            r.start_seconds for r in single.batches
        ]

    def test_holds_under_deadline_batching(self):
        geometry = tiny_tape(seed=3)
        policy = BatchPolicy(
            max_batch=8, max_wait_seconds=120.0, flush_when_idle=False
        )
        requests = workload(
            11, count=30, horizon_seconds=2500.0,
            total_segments=geometry.total_segments,
        )
        _, single_stats, _, multi_stats = run_both(
            requests, geometry, policy=policy
        )
        assert multi_stats.samples == single_stats.samples

    def test_holds_under_fault_injection(self):
        # _derived_seed(seed, 0, 0) == seed: the preloaded drive draws
        # the exact fault stream of the single-drive FaultInjector.
        geometry = tiny_tape(seed=3)
        plan = FaultPlan(locate_fault_probability=0.3, seed=17)
        requests = workload(
            13, count=24, horizon_seconds=2000.0,
            total_segments=geometry.total_segments,
        )
        single, single_stats, multi, multi_stats = run_both(
            requests, geometry, fault_plan=plan
        )
        assert multi_stats.samples == single_stats.samples
        assert [r.segment for r in multi.failed] == [
            r.segment for r in single.failed
        ]
        assert multi.requeues == single.requeues

    def test_batch_records_match_field_for_field(self):
        geometry = tiny_tape(seed=3)
        requests = workload(
            19, count=20, horizon_seconds=1500.0,
            total_segments=geometry.total_segments,
        )
        single, _, multi, _ = run_both(requests, geometry)
        assert len(multi.batches) == len(single.batches)
        for ours, theirs in zip(multi.batches, single.batches):
            assert ours.start_seconds == theirs.start_seconds
            assert ours.size == theirs.size
            assert ours.execution_seconds == theirs.execution_seconds
            assert ours.queue_wait_seconds == theirs.queue_wait_seconds
            assert ours.locate_seconds == theirs.locate_seconds
            assert ours.rewind_seconds == theirs.rewind_seconds
            assert ours.drive == 0
            assert ours.label == LABEL


class TestGoldenEquivalence:
    """One fixed workload's samples, frozen bit-for-bit."""

    def _records(self):
        geometry = tiny_tape(seed=3)
        requests = workload(
            23, count=40, horizon_seconds=3000.0,
            total_segments=geometry.total_segments,
        )
        single, single_stats, multi, multi_stats = run_both(
            requests, geometry
        )
        assert multi_stats.samples == single_stats.samples
        return json.loads(
            json.dumps(
                {
                    "samples": list(multi_stats.samples),
                    "batch_sizes": [r.size for r in multi.batches],
                    "batch_starts": [
                        r.start_seconds for r in multi.batches
                    ],
                    "makespan_seconds": multi.clock_seconds,
                }
            )
        )

    def test_matches_the_frozen_fixture(self, regen_golden):
        records = self._records()
        if regen_golden:
            GOLDEN_PATH.parent.mkdir(exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(records, indent=1) + "\n"
            )
        if not GOLDEN_PATH.exists():
            pytest.fail(
                f"golden fixture {GOLDEN_PATH} is missing; generate "
                "it with pytest tests/library/test_equivalence.py "
                "--regen-golden"
            )
        frozen = json.loads(GOLDEN_PATH.read_text())
        assert records == frozen, (
            "single-drive equivalence output drifted from its golden "
            "fixture; if intentional, rerun with --regen-golden"
        )


class TestBeyondOneDrive:
    def test_two_drives_beat_one_on_a_two_tape_load(self):
        tapes = [
            Cartridge("a", tiny_tape(seed=1)),
            Cartridge("b", tiny_tape(seed=2)),
        ]
        rng = np.random.default_rng(29)
        requests = [
            LibraryRequest(
                arrival_seconds=float(t),
                label="a" if k % 2 == 0 else "b",
                segment=int(rng.integers(0, 300)),
            )
            for k, t in enumerate(
                np.sort(rng.uniform(0.0, 1200.0, size=24))
            )
        ]
        one = MultiDriveSystem(tapes, drives=1)
        two = MultiDriveSystem(tapes, drives=2)
        slow = one.run(list(requests))
        fast = two.run(list(requests))
        assert fast.mean_seconds < slow.mean_seconds
        assert one.lost == 0 and two.lost == 0
