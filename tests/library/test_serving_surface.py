"""The library's opened serving surface and degraded-mode budgets.

The ``begin() / submit() / finish()`` triple must serve exactly what
``run()`` serves, and the wall-clock / simulated-time budgets of
:class:`~repro.resilience.ResilienceConfig` must trip the sticky
fallback scheduler with a ``system.degraded`` event — deterministic in
the zero-budget case, which every machine exceeds.
"""

import pytest

from repro.exceptions import LibraryError
from repro.geometry import tiny_tape
from repro.library import (
    Cartridge,
    MultiDriveSystem,
    poisson_library_stream,
)
from repro.obs import EventBus
from repro.resilience import ResilienceConfig


def shelf(count=2):
    return [
        Cartridge(f"tape-{index}", tiny_tape(seed=index + 1))
        for index in range(count)
    ]


def stream(cartridges, seed=3, rate=180.0):
    return poisson_library_stream(
        [c.label for c in cartridges],
        rate_per_hour=rate,
        total_segments=cartridges[0].geometry.total_segments,
        seed=seed,
    )


class TestOpenedSurface:
    def test_incremental_matches_run(self):
        cartridges = shelf()
        requests = stream(cartridges)

        whole = MultiDriveSystem(cartridges, drives=2)
        whole_stats = whole.run(requests)

        piecewise = MultiDriveSystem(shelf(), drives=2)
        piecewise.begin()
        for request in sorted(
            requests, key=lambda r: r.arrival_seconds
        ):
            piecewise.submit(request)
        piecewise_stats = piecewise.finish()

        assert piecewise_stats.samples == whole_stats.samples
        assert piecewise.lost == 0

    def test_submit_requires_begin(self):
        system = MultiDriveSystem(shelf(), drives=1)
        with pytest.raises(LibraryError):
            system.submit(stream(shelf())[0])

    def test_finish_requires_begin(self):
        system = MultiDriveSystem(shelf(), drives=1)
        with pytest.raises(LibraryError):
            system.finish()

    def test_begin_is_one_shot(self):
        system = MultiDriveSystem(shelf(), drives=1)
        system.begin()
        with pytest.raises(LibraryError):
            system.begin()

    def test_listeners_see_every_outcome(self):
        cartridges = shelf()
        requests = stream(cartridges)
        system = MultiDriveSystem(cartridges, drives=2)
        completed = []
        system.completion_listeners.append(
            lambda request, seconds, drive: completed.append(
                (request, seconds, drive)
            )
        )
        system.run(requests)
        assert len(completed) + len(system.failed) == len(requests)
        # Identity, not copies: listeners get the submitted objects.
        submitted = {id(r) for r in requests}
        assert all(id(r) in submitted for r, _, _ in completed)
        for request, seconds, _drive in completed:
            assert seconds >= request.arrival_seconds


class TestDegradedBudgets:
    def test_zero_wall_budget_trips_degraded(self):
        bus = EventBus()
        events = bus.collect("system.degraded")
        system = MultiDriveSystem(
            shelf(),
            drives=2,
            bus=bus,
            resilience=ResilienceConfig(
                schedule_wall_budget_seconds=0.0
            ),
        )
        assert not system.degraded
        system.run(stream(shelf()))
        assert system.degraded
        assert events
        assert events[0].reason.startswith("scheduling took")
        assert events[0].to_algorithm == "SORT"

    def test_tiny_execution_budget_trips_degraded(self):
        bus = EventBus()
        events = bus.collect("system.degraded")
        system = MultiDriveSystem(
            shelf(),
            drives=2,
            bus=bus,
            resilience=ResilienceConfig(
                execution_budget_seconds=0.001
            ),
        )
        system.run(stream(shelf()))
        assert system.degraded
        assert events[0].reason.startswith("batch execution took")

    def test_degraded_switches_scheduler_but_loses_nothing(self):
        cartridges = shelf()
        requests = stream(cartridges)
        system = MultiDriveSystem(
            cartridges,
            drives=2,
            resilience=ResilienceConfig(
                schedule_wall_budget_seconds=0.0,
                fallback_algorithm="FIFO",
            ),
        )
        stats = system.run(requests)
        assert system.degraded
        assert stats.count + len(system.failed) == len(requests)
        assert system.lost == 0
        # Batches scheduled after the trip carry the fallback's name.
        assert system.batches[-1].algorithm == "FIFO"

    def test_no_budget_never_degrades(self):
        system = MultiDriveSystem(shelf(), drives=2)
        system.run(stream(shelf()))
        assert not system.degraded
