"""The shared robot arm and drive-bay state."""

import pytest

from repro.exceptions import LibraryError
from repro.library.drives import DriveBay, DriveState
from repro.library.events import MountCompleted, MountStarted
from repro.library.kernel import EventKernel
from repro.library.robot import ExchangeJob, RobotArm


@pytest.fixture()
def kernel():
    return EventKernel()


@pytest.fixture()
def arm(kernel):
    return RobotArm(kernel, exchange_seconds=30.0)


def job(drive=0, label="a", requested=0.0, unload=None, rewind=0.0):
    return ExchangeJob(
        drive=drive, label=label, requested_seconds=requested,
        unload_label=unload, rewind_seconds=rewind,
    )


class TestJobCosts:
    def test_load_into_empty_bay_is_one_exchange(self, arm):
        assert arm.job_seconds(job()) == pytest.approx(30.0)

    def test_swap_charges_rewind_and_both_exchanges(self, arm):
        swap = job(unload="old", rewind=12.5)
        # Shelve the outgoing cartridge (rewind + exchange), then load.
        assert arm.job_seconds(swap) == pytest.approx(12.5 + 30.0 + 30.0)


class TestFifoService:
    def test_single_job_lifecycle(self, kernel, arm):
        events = []
        kernel.on(MountStarted, events.append)
        kernel.on(MountCompleted, events.append)
        arm.submit(job(label="x", requested=0.0))
        assert arm.busy
        kernel.run()
        assert not arm.busy
        assert arm.exchanges == 1
        assert arm.busy_seconds == pytest.approx(30.0)
        assert events == [
            MountStarted(drive=0, label="x"),
            MountCompleted(
                drive=0, label="x", requested_seconds=0.0,
                robot_seconds=30.0,
            ),
        ]
        assert kernel.now_seconds == pytest.approx(30.0)

    def test_concurrent_requests_serialize(self, kernel, arm):
        completions = []
        kernel.on(
            MountCompleted,
            lambda e: completions.append((e.drive, kernel.now_seconds)),
        )
        for drive in range(3):
            arm.submit(job(drive=drive, label=f"t{drive}"))
        assert arm.queued == 2  # one in progress, two waiting
        kernel.run()
        assert completions == [
            (0, pytest.approx(30.0)),
            (1, pytest.approx(60.0)),
            (2, pytest.approx(90.0)),
        ]
        assert arm.exchanges == 3
        assert arm.busy_seconds == pytest.approx(90.0)
        assert arm.queued == 0

    def test_mount_wait_grows_down_the_queue(self, kernel, arm):
        waits = []
        kernel.on(
            MountCompleted,
            lambda e: waits.append(
                kernel.now_seconds - e.requested_seconds
            ),
        )
        for drive in range(4):
            arm.submit(job(drive=drive))
        kernel.run()
        assert waits == [
            pytest.approx(30.0 * (k + 1)) for k in range(4)
        ]

    def test_arm_resumes_after_going_idle(self, kernel, arm):
        arm.submit(job(drive=0))
        kernel.run()
        assert not arm.busy
        arm.submit(job(drive=1))
        assert arm.busy
        kernel.run()
        assert arm.exchanges == 2
        assert kernel.now_seconds == pytest.approx(60.0)


class TestDriveBay:
    def test_fresh_bay_is_empty_and_available(self):
        bay = DriveBay(0)
        assert bay.state is DriveState.EMPTY
        assert bay.available
        assert not bay.idle_with_tape

    def test_mounting_and_executing_are_unavailable(self):
        bay = DriveBay(0)
        bay.state = DriveState.MOUNTING
        assert not bay.available
        bay.state = DriveState.EXECUTING
        assert not bay.available

    def test_idle_with_tape_needs_a_label(self):
        bay = DriveBay(0, state=DriveState.IDLE)
        assert not bay.idle_with_tape
        bay.label = "a"
        assert bay.idle_with_tape

    def test_require_drive_raises_while_empty(self):
        with pytest.raises(LibraryError, match="bay 3"):
            DriveBay(3).require_drive()

    def test_require_drive_returns_the_mechanism(self):
        bay = DriveBay(0)
        sentinel = object()
        bay.drive = sentinel
        assert bay.require_drive() is sentinel
