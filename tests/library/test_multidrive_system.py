"""The event-driven multi-drive system."""

import pytest

from repro.exceptions import LibraryError, UnknownTape
from repro.geometry import tiny_tape
from repro.library import (
    Cartridge,
    LeastLoadedAssignment,
    LibraryRequest,
    MultiDriveSystem,
    PreemptOnDeadlineExchange,
)
from repro.library.drives import DriveState
from repro.library.system import _derived_seed
from repro.obs.bus import EventBus
from repro.obs.metrics import bind_standard_metrics
from repro.online import BatchPolicy
from repro.resilience import FaultPlan, ResilienceConfig, RetryPolicy


def shelf(count=3):
    return [
        Cartridge(f"tape-{index}", tiny_tape(seed=index + 1))
        for index in range(count)
    ]


def burst(labels, per_tape=4, spacing_seconds=10.0, segments=(5, 42, 99, 150)):
    """A deterministic arrival burst over the given tapes."""
    requests = []
    for tape_index, label in enumerate(labels):
        for k in range(per_tape):
            requests.append(
                LibraryRequest(
                    arrival_seconds=spacing_seconds * (
                        k * len(labels) + tape_index
                    ),
                    label=label,
                    segment=segments[k % len(segments)],
                )
            )
    return requests


class TestConstruction:
    def test_requires_a_drive(self):
        with pytest.raises(LibraryError, match="drives"):
            MultiDriveSystem(shelf(1), drives=0)

    def test_requires_a_cartridge(self):
        with pytest.raises(LibraryError, match="cartridge"):
            MultiDriveSystem([], drives=1)

    def test_duplicate_labels_rejected(self):
        tapes = [
            Cartridge("x", tiny_tape(seed=1)),
            Cartridge("x", tiny_tape(seed=2)),
        ]
        with pytest.raises(LibraryError, match="unique"):
            MultiDriveSystem(tapes, drives=1)

    def test_preload_cannot_exceed_the_bays(self):
        with pytest.raises(LibraryError, match="preload"):
            MultiDriveSystem(
                shelf(3), drives=2,
                preload=["tape-0", "tape-1", "tape-2"],
            )

    def test_preload_rejects_duplicates(self):
        with pytest.raises(LibraryError, match="twice"):
            MultiDriveSystem(
                shelf(2), drives=2, preload=["tape-0", "tape-0"]
            )

    def test_preload_is_free_and_ready(self):
        system = MultiDriveSystem(
            shelf(2), drives=2, preload=["tape-1"]
        )
        assert system.bays[0].label == "tape-1"
        assert system.bays[0].state is DriveState.IDLE
        assert system.bays[1].state is DriveState.EMPTY
        assert system.exchanges == 0
        assert system.clock_seconds == 0.0

    def test_fault_plan_implies_resilience(self):
        system = MultiDriveSystem(
            shelf(1), drives=1,
            fault_plan=FaultPlan(locate_fault_probability=0.1),
        )
        assert system.resilience is not None


class TestLookups:
    def test_labels_sorted(self):
        system = MultiDriveSystem(shelf(3), drives=1)
        assert system.labels() == ["tape-0", "tape-1", "tape-2"]

    def test_unknown_cartridge(self):
        system = MultiDriveSystem(shelf(1), drives=1)
        with pytest.raises(UnknownTape):
            system.cartridge("nope")
        with pytest.raises(UnknownTape):
            system.queue_depth("nope")

    def test_unknown_request_label_rejected_up_front(self):
        system = MultiDriveSystem(shelf(1), drives=1)
        with pytest.raises(UnknownTape, match="ghost"):
            system.run([LibraryRequest(0.0, "ghost", 1)])

    def test_run_is_once_only(self):
        system = MultiDriveSystem(shelf(1), drives=1)
        system.run([LibraryRequest(0.0, "tape-0", 5)])
        with pytest.raises(LibraryError, match="already ran"):
            system.run([LibraryRequest(0.0, "tape-0", 5)])


class TestServing:
    def test_serves_every_request(self):
        system = MultiDriveSystem(shelf(3), drives=2)
        requests = burst(system.labels())
        stats = system.run(requests)
        assert stats.count == len(requests)
        assert system.completed == len(requests)
        assert system.lost == 0
        assert not system.failed
        assert system.clock_seconds > 0.0

    def test_bay_accounting_reconciles(self):
        system = MultiDriveSystem(shelf(3), drives=2)
        system.run(burst(system.labels()))
        assert sum(bay.batches for bay in system.bays) == len(
            system.batches
        )
        assert sum(bay.mounts for bay in system.bays) == (
            system.exchanges
        )
        total_busy = sum(bay.busy_seconds for bay in system.bays)
        assert total_busy == pytest.approx(
            sum(r.execution_seconds for r in system.batches)
        )
        for bay in system.bays:
            assert bay.state in (DriveState.IDLE, DriveState.EMPTY)

    def test_batch_records_carry_bay_and_tape(self):
        system = MultiDriveSystem(shelf(2), drives=2)
        system.run(burst(system.labels(), per_tape=3))
        assert system.batches
        for record in system.batches:
            assert 0 <= record.drive < 2
            assert record.label in ("tape-0", "tape-1")
            assert record.size > 0

    def test_every_tape_gets_mounted(self):
        system = MultiDriveSystem(shelf(3), drives=2)
        system.run(burst(system.labels()))
        served = {record.label for record in system.batches}
        assert served == set(system.labels())

    def test_a_tape_is_never_mounted_twice_at_once(self):
        bus = EventBus()
        mounts = bus.collect("library.mount")
        unmounts = bus.collect("library.unmount")
        system = MultiDriveSystem(shelf(2), drives=2, bus=bus)
        system.run(burst(system.labels(), per_tape=6))
        timeline = sorted(
            [(e.seconds, 1, e.label) for e in mounts]
            + [(e.seconds, -1, e.label) for e in unmounts]
        )
        mounted = set()
        for _, delta, label in timeline:
            if delta > 0:
                assert label not in mounted
                mounted.add(label)
            else:
                mounted.discard(label)

    def test_more_drives_do_not_slow_the_library(self):
        requests = burst(
            [f"tape-{i}" for i in range(4)], per_tape=4
        )
        tapes = shelf(4)
        single = MultiDriveSystem(tapes, drives=1)
        quad = MultiDriveSystem(tapes, drives=4)
        slow = single.run(list(requests))
        fast = quad.run(list(requests))
        assert fast.mean_seconds < slow.mean_seconds
        assert quad.clock_seconds < single.clock_seconds


class TestRobotContention:
    def test_simultaneous_mounts_serialize_on_the_arm(self):
        bus = EventBus()
        waits = bus.collect("library.mount_wait")
        system = MultiDriveSystem(
            shelf(4), drives=4, exchange_seconds=30.0, bus=bus
        )
        # Four tapes all want a bay at t=0; one arm serves them FIFO.
        system.run(
            [
                LibraryRequest(0.0, label, 5)
                for label in system.labels()
            ]
        )
        assert sorted(e.wait_seconds for e in waits) == [
            pytest.approx(30.0 * (k + 1)) for k in range(4)
        ]
        # Each individual job occupied the arm for one exchange.
        for event in waits:
            assert event.robot_seconds == pytest.approx(30.0)
        assert system.lost == 0


class TestPolicies:
    def test_least_loaded_mounts_the_deepest_queue_first(self):
        bus = EventBus()
        mounts = bus.collect("library.mount")
        system = MultiDriveSystem(
            shelf(3),
            drives=1,
            assignment=LeastLoadedAssignment(),
            preload=["tape-2"],
            bus=bus,
        )
        # While the bay executes tape-2's batch, tape-0 (first, but
        # shallow) and tape-1 (deeper) accumulate; the exchange choice
        # happens at batch completion, when both queues are visible.
        system.run(
            [
                LibraryRequest(0.0, "tape-2", 150),
                LibraryRequest(0.1, "tape-0", 5),
                LibraryRequest(0.2, "tape-1", 5),
                LibraryRequest(0.3, "tape-1", 42),
                LibraryRequest(0.4, "tape-1", 99),
            ]
        )
        # Preloads don't publish: the first mount event is the robot's
        # first exchange, and least-loaded takes the deeper tape-1
        # even though tape-0's request is older.
        assert mounts[0].label == "tape-1"
        assert system.lost == 0

    def test_drain_keeps_the_mounted_tape(self):
        system = MultiDriveSystem(
            shelf(2),
            drives=1,
            policy=BatchPolicy(max_batch=4, flush_when_idle=False),
            preload=["tape-0"],
        )
        system.run(
            [
                LibraryRequest(0.0, "tape-0", 5),
                LibraryRequest(0.0, "tape-1", 5),
                LibraryRequest(1000.0, "tape-1", 42),
            ]
        )
        # The bay never gives up tape-0 while it has queued work: one
        # exchange total (tape-1, after tape-0 drains).
        assert system.exchanges == 1
        assert system.lost == 0

    def test_preempt_releases_a_starved_tape(self):
        bus = EventBus()
        mounts = bus.collect("library.mount")
        system = MultiDriveSystem(
            shelf(2),
            drives=1,
            exchange=PreemptOnDeadlineExchange(
                preempt_wait_seconds=900.0
            ),
            policy=BatchPolicy(max_batch=4, flush_when_idle=False),
            preload=["tape-0"],
            bus=bus,
        )
        system.run(
            [
                LibraryRequest(0.0, "tape-0", 5),
                LibraryRequest(0.0, "tape-1", 5),
                LibraryRequest(1000.0, "tape-1", 42),
            ]
        )
        # At t=1000 tape-1's oldest request has waited past 900s, so
        # the bay abandons tape-0 (still holding a queued request) and
        # mounts tape-1; tape-0 is re-mounted during the final drain.
        assert [event.label for event in mounts][:1] == ["tape-1"]
        assert system.exchanges == 2
        assert system.lost == 0


class TestDeadlines:
    def test_max_wait_triggers_the_dispatch(self):
        system = MultiDriveSystem(
            shelf(1),
            drives=1,
            policy=BatchPolicy(
                max_batch=96,
                max_wait_seconds=100.0,
                flush_when_idle=False,
            ),
            preload=["tape-0"],
        )
        system.run(
            [
                LibraryRequest(0.0, "tape-0", 5),
                LibraryRequest(1.0, "tape-0", 42),
            ]
        )
        assert len(system.batches) == 1
        # The batch went out at the oldest request's deadline, not at
        # the end-of-run drain.
        assert system.batches[0].start_seconds == pytest.approx(100.0)
        assert system.lost == 0


class TestResilience:
    def test_faulty_run_still_serves_everything(self):
        system = MultiDriveSystem(
            shelf(2),
            drives=2,
            fault_plan=FaultPlan(locate_fault_probability=0.2, seed=9),
        )
        requests = burst(system.labels())
        stats = system.run(requests)
        assert stats.count == len(requests)
        assert system.lost == 0
        assert not system.failed

    def test_exhausted_requeues_surface_as_failed(self):
        bus = EventBus()
        failures = bus.collect("request.failed")
        system = MultiDriveSystem(
            shelf(1),
            drives=1,
            preload=["tape-0"],
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1), max_requeues=0
            ),
            fault_plan=FaultPlan(read_fault_probability=1.0),
            bus=bus,
        )
        requests = [
            LibraryRequest(0.0, "tape-0", 5),
            LibraryRequest(0.0, "tape-0", 42),
        ]
        stats = system.run(requests)
        assert stats.count == 0
        assert len(system.failed) == len(requests)
        assert system.lost == 0
        # The executor publishes per-attempt failures too; the
        # system-level ones are the requeue-budget exhaustions.
        requeue_failures = [
            e for e in failures if "requeue" in e.reason
        ]
        assert len(requeue_failures) == len(requests)

    def test_requeues_are_counted(self):
        system = MultiDriveSystem(
            shelf(1),
            drives=1,
            preload=["tape-0"],
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1), max_requeues=2
            ),
            fault_plan=FaultPlan(read_fault_probability=1.0),
        )
        system.run([LibraryRequest(0.0, "tape-0", 5)])
        assert system.requeues == 2
        assert len(system.failed) == 1
        assert system.lost == 0


class TestObservability:
    def test_standard_metrics_cover_the_library(self):
        bus = EventBus()
        registry = bind_standard_metrics(bus)
        system = MultiDriveSystem(shelf(2), drives=2, bus=bus)
        requests = burst(system.labels())
        system.run(requests)
        snapshot = registry.as_dict()
        assert snapshot["library.mount_wait_seconds"]["count"] == (
            system.exchanges
        )
        assert snapshot["robot.busy_seconds"] == pytest.approx(
            system.robot.busy_seconds
        )
        assert (
            registry.histogram("request.response_seconds").count
            == len(requests)
        )
        per_drive = sum(
            snapshot[f"drive.{bay.index}.busy_seconds"]
            for bay in system.bays
        )
        assert per_drive == pytest.approx(
            sum(bay.busy_seconds for bay in system.bays)
        )

    def test_mount_wait_decomposes_into_robot_time(self):
        bus = EventBus()
        waits = bus.collect("library.mount_wait")
        system = MultiDriveSystem(shelf(3), drives=2, bus=bus)
        system.run(burst(system.labels()))
        assert len(waits) == system.exchanges
        for event in waits:
            # Wait covers at least the arm's own handling time; the
            # surplus is queueing behind other exchanges.
            assert (
                event.wait_seconds >= event.robot_seconds - 1e-9
            )


class TestDerivedSeeds:
    def test_first_mount_on_bay_zero_keeps_the_seed(self):
        assert _derived_seed(1234, 0, 0) == 1234

    def test_other_mounts_get_distinct_streams(self):
        seeds = {
            _derived_seed(1234, drive, mount)
            for drive in range(3)
            for mount in range(3)
        }
        assert len(seeds) == 9
        for seed in seeds:
            assert 0 <= seed < 2**64
