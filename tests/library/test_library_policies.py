"""Drive-assignment and exchange policies."""

import pytest

from repro.library.policies import (
    DrainBatchExchange,
    LeastLoadedAssignment,
    PreemptOnDeadlineExchange,
    TapeAffinityAssignment,
    TapeQueueView,
    assignment_policy_names,
    exchange_policy_names,
    get_assignment_policy,
    get_exchange_policy,
)


def view(label, depth=1, oldest=0.0):
    return TapeQueueView(
        label=label, depth=depth, oldest_arrival_seconds=oldest
    )


class TestTapeAffinity:
    def test_empty_candidates_stay_idle(self):
        assert TapeAffinityAssignment().choose(None, [], 0.0) is None

    def test_prefers_the_longest_waiting_tape(self):
        policy = TapeAffinityAssignment()
        candidates = [view("a", oldest=50.0), view("b", oldest=10.0)]
        assert policy.choose(None, candidates, 100.0) == "b"

    def test_ties_break_on_label(self):
        policy = TapeAffinityAssignment()
        candidates = [view("b", oldest=5.0), view("a", oldest=5.0)]
        assert policy.choose(None, candidates, 10.0) == "a"

    def test_sticks_to_the_mounted_tape_when_it_qualifies(self):
        policy = TapeAffinityAssignment()
        candidates = [view("a", oldest=50.0), view("b", oldest=10.0)]
        assert policy.choose("a", candidates, 100.0) == "a"

    def test_decision_ignores_depth(self):
        policy = TapeAffinityAssignment()
        candidates = [
            view("deep", depth=40, oldest=20.0),
            view("old", depth=1, oldest=5.0),
        ]
        assert policy.choose(None, candidates, 100.0) == "old"


class TestLeastLoaded:
    def test_empty_candidates_stay_idle(self):
        assert LeastLoadedAssignment().choose(None, [], 0.0) is None

    def test_prefers_the_deepest_queue(self):
        policy = LeastLoadedAssignment()
        candidates = [
            view("a", depth=3, oldest=1.0),
            view("b", depth=9, oldest=50.0),
        ]
        assert policy.choose(None, candidates, 100.0) == "b"

    def test_depth_ties_break_on_oldest_then_label(self):
        policy = LeastLoadedAssignment()
        assert policy.choose(
            None,
            [view("b", depth=4, oldest=9.0), view("a", depth=4, oldest=2.0)],
            10.0,
        ) == "a"
        assert policy.choose(
            None,
            [view("b", depth=4, oldest=2.0), view("a", depth=4, oldest=2.0)],
            10.0,
        ) == "a"


class TestExchangePolicies:
    def test_drain_never_releases(self):
        policy = DrainBatchExchange()
        mounted = view("m", depth=1, oldest=0.0)
        starving = [view("s", depth=50, oldest=0.0)]
        assert policy.should_release(mounted, starving, 1e9) is False

    def test_preempt_releases_past_the_deadline(self):
        policy = PreemptOnDeadlineExchange(preempt_wait_seconds=100.0)
        mounted = view("m")
        candidates = [view("s", oldest=0.0)]
        assert policy.should_release(mounted, candidates, 99.0) is False
        assert policy.should_release(mounted, candidates, 100.0) is True

    def test_preempt_checks_every_candidate(self):
        policy = PreemptOnDeadlineExchange(preempt_wait_seconds=100.0)
        candidates = [view("young", oldest=90.0), view("old", oldest=0.0)]
        assert policy.should_release(view("m"), candidates, 101.0) is True

    def test_preempt_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            PreemptOnDeadlineExchange(preempt_wait_seconds=0.0)


class TestRegistry:
    def test_assignment_names(self):
        assert assignment_policy_names() == ["affinity", "least-loaded"]

    def test_exchange_names(self):
        assert exchange_policy_names() == ["drain", "preempt"]

    def test_lookup_builds_fresh_instances(self):
        first = get_assignment_policy("affinity")
        second = get_assignment_policy("affinity")
        assert isinstance(first, TapeAffinityAssignment)
        assert first is not second
        assert isinstance(
            get_exchange_policy("preempt"), PreemptOnDeadlineExchange
        )

    def test_names_match_the_instances(self):
        for name in assignment_policy_names():
            assert get_assignment_policy(name).name == name
        for name in exchange_policy_names():
            assert get_exchange_policy(name).name == name

    def test_unknown_names_list_the_known_ones(self):
        with pytest.raises(ValueError, match="affinity"):
            get_assignment_policy("round-robin")
        with pytest.raises(ValueError, match="drain"):
            get_exchange_policy("never")
