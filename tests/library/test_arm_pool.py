"""The arm pool: golden bit-identity at K=1, invariants at K>1.

The refactor from one shared :class:`RobotArm` to an
:class:`ArmPool` claims a 1-arm pool is **bit-identical** to the seed
library — same response samples, same batch boundaries, same failure
set, same robot accounting, at the same instants.  The golden fixture
(``golden/arm_pool.json``) was captured from the pre-refactor seed and
is replayed here against the pool; the Hypothesis property widens the
same claim across workloads and arm policies (with one arm, every
policy must degenerate to "the one arm").

Multi-arm runs cannot be pinned to the seed — they are the point of
the refactor — so they are checked against invariants instead: no
request is ever lost, exchange and busy-time accounting sums over the
arms, and occupancies stay within [0, 1].
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import LibraryError
from repro.geometry import tiny_tape
from repro.library import (
    ArmPool,
    ArmView,
    Cartridge,
    DedicatedBayArms,
    LeastBusyArms,
    LibraryRequest,
    MultiDriveSystem,
    RoundRobinArms,
    arm_policy_names,
    get_arm_policy,
)
from repro.library.kernel import EventKernel
from repro.library.policies import get_assignment_policy, get_exchange_policy
from repro.library.robot import ExchangeJob
from repro.online import BatchPolicy
from repro.resilience import FaultPlan
from repro.scheduling import get_scheduler

GOLDEN_PATH = Path(__file__).parent / "golden" / "arm_pool.json"

GOLDEN_CASES = [
    dict(drives=1, algorithm="LOSS", assignment="affinity",
         exchange="drain", fault=False, seed=3),
    dict(drives=2, algorithm="LOSS", assignment="affinity",
         exchange="drain", fault=False, seed=5),
    dict(drives=4, algorithm="LOSS", assignment="affinity",
         exchange="drain", fault=False, seed=7),
    dict(drives=4, algorithm="SLTF", assignment="least-loaded",
         exchange="drain", fault=False, seed=9),
    dict(drives=2, algorithm="SCAN", assignment="affinity",
         exchange="preempt", fault=False, seed=13),
    dict(drives=4, algorithm="LOSS", assignment="affinity",
         exchange="drain", fault=True, seed=17),
    dict(drives=2, algorithm="FIFO", assignment="least-loaded",
         exchange="preempt", fault=True, seed=19),
]


def workload(seed, count, horizon_seconds, labels, total_segments):
    """The golden capture's request stream (arrival-sorted, uniform)."""
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, horizon_seconds, size=count))
    segments = rng.integers(0, total_segments, size=count)
    picks = rng.integers(0, len(labels), size=count)
    return [
        LibraryRequest(
            arrival_seconds=float(arrivals[k]),
            label=labels[int(picks[k])],
            segment=int(segments[k]),
        )
        for k in range(count)
    ]


def run_case(drives, algorithm, assignment, exchange, fault, seed,
             arms=1, arm_policy=None):
    """One golden-capture scenario through the current system."""
    tapes = [Cartridge(f"t{i}", tiny_tape(seed=i + 1)) for i in range(5)]
    labels = [c.label for c in tapes]
    total = min(c.geometry.total_segments for c in tapes)
    requests = workload(seed, 40, 4000.0, labels, total)
    plan = (
        FaultPlan(locate_fault_probability=0.25, seed=11) if fault else None
    )
    system = MultiDriveSystem(
        tapes,
        drives=drives,
        arms=arms,
        arm_assignment=arm_policy,
        scheduler=get_scheduler(algorithm),
        policy=BatchPolicy(max_batch=8),
        assignment=get_assignment_policy(assignment),
        exchange=get_exchange_policy(exchange),
        fault_plan=plan,
    )
    stats = system.run(requests)
    return system, stats, requests


def record(system, stats):
    """The golden fixture's observable surface for one run."""
    return {
        "samples": list(stats.samples),
        "batch_sizes": [r.size for r in system.batches],
        "batch_starts": [r.start_seconds for r in system.batches],
        "batch_drives": [r.drive for r in system.batches],
        "failed_segments": sorted(r.segment for r in system.failed),
        "exchanges": system.exchanges,
        "robot_busy_seconds": system.robot.busy_seconds,
        "makespan_seconds": system.clock_seconds,
        "lost": system.lost,
    }


def case_key(case):
    return (
        f"d{case['drives']}-{case['algorithm']}-{case['assignment']}-"
        f"{case['exchange']}-{'fault' if case['fault'] else 'clean'}-"
        f"s{case['seed']}"
    )


class TestGoldenBitIdentity:
    def test_one_arm_matches_the_seed_fixture(self, regen_golden):
        records = {
            case_key(case): record(*run_case(**case)[:2])
            for case in GOLDEN_CASES
        }
        if regen_golden:
            GOLDEN_PATH.write_text(json.dumps(records, indent=1))
            pytest.skip("regenerated golden/arm_pool.json")
        golden = json.loads(GOLDEN_PATH.read_text())
        assert set(records) == set(golden)
        for key in golden:
            # Exact equality on floats: the pre-refactor seed and the
            # 1-arm pool must produce the same event sequence at the
            # same instants, not merely close statistics.
            assert records[key] == golden[key], key


class TestOneArmPolicyIndifference:
    @given(
        workload_seed=st.integers(min_value=0, max_value=40),
        policy_name=st.sampled_from(sorted(arm_policy_names())),
    )
    @settings(max_examples=15, deadline=None)
    def test_every_policy_degenerates_with_one_arm(
        self, workload_seed, policy_name
    ):
        base_system, base_stats, _ = run_case(
            drives=2, algorithm="LOSS", assignment="affinity",
            exchange="drain", fault=False, seed=workload_seed,
        )
        system, stats, _ = run_case(
            drives=2, algorithm="LOSS", assignment="affinity",
            exchange="drain", fault=False, seed=workload_seed,
            arms=1, arm_policy=get_arm_policy(policy_name),
        )
        assert stats.samples == base_stats.samples
        assert system.exchanges == base_system.exchanges
        assert system.robot.busy_seconds == base_system.robot.busy_seconds


class TestMultiArmInvariants:
    @given(
        workload_seed=st.integers(min_value=0, max_value=30),
        arms=st.integers(min_value=2, max_value=4),
        policy_name=st.sampled_from(sorted(arm_policy_names())),
    )
    @settings(max_examples=15, deadline=None)
    def test_no_request_is_lost_and_accounting_sums(
        self, workload_seed, arms, policy_name
    ):
        system, stats, requests = run_case(
            drives=4, algorithm="LOSS", assignment="affinity",
            exchange="drain", fault=False, seed=workload_seed,
            arms=arms, arm_policy=get_arm_policy(policy_name),
        )
        assert system.lost == 0
        assert stats.count + len(system.failed) == len(requests)
        pool = system.robot
        assert len(pool) == arms
        assert pool.exchanges == sum(a.exchanges for a in pool.arms)
        assert pool.busy_seconds == pytest.approx(
            sum(a.busy_seconds for a in pool.arms)
        )
        for occupancy in pool.occupancies(system.clock_seconds):
            assert 0.0 <= occupancy <= 1.0

    def test_two_arms_never_serve_slower_on_the_golden_cases(self):
        for case in GOLDEN_CASES[:3]:
            _, one_arm, _ = run_case(**case)
            _, two_arms, _ = run_case(**case, arms=2)
            if one_arm.count and two_arms.count:
                assert (
                    two_arms.mean_seconds
                    <= one_arm.mean_seconds + 1e-9
                ), case_key(case)


class TestArmPoolUnit:
    def test_rejects_zero_arms(self):
        with pytest.raises(LibraryError):
            ArmPool(EventKernel(), exchange_seconds=30.0, arms=0)

    def test_rejects_out_of_range_policy_choice(self):
        class Bad:
            name = "bad"

            def choose(self, drive, arms):
                return len(arms)

        pool = ArmPool(
            EventKernel(), exchange_seconds=30.0, arms=2, assignment=Bad()
        )
        with pytest.raises(LibraryError):
            pool.submit(
                ExchangeJob(drive=0, label="t0", requested_seconds=0.0)
            )

    def test_least_busy_prefers_idle_then_low_busy_time(self):
        views = [
            ArmView(index=0, busy=True, queued=2, busy_seconds=10.0),
            ArmView(index=1, busy=False, queued=0, busy_seconds=50.0),
            ArmView(index=2, busy=False, queued=0, busy_seconds=5.0),
        ]
        assert LeastBusyArms().choose(0, views) == 2

    def test_round_robin_cycles(self):
        views = [
            ArmView(index=i, busy=False, queued=0, busy_seconds=0.0)
            for i in range(3)
        ]
        policy = RoundRobinArms()
        picks = [policy.choose(0, views) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_dedicated_partitions_by_bay(self):
        views = [
            ArmView(index=i, busy=False, queued=0, busy_seconds=0.0)
            for i in range(2)
        ]
        policy = DedicatedBayArms()
        assert [policy.choose(d, views) for d in range(4)] == [0, 1, 0, 1]

    def test_pool_spreads_jobs_across_arms(self):
        kernel = EventKernel()
        pool = ArmPool(kernel, exchange_seconds=30.0, arms=2)
        chosen = [
            pool.submit(
                ExchangeJob(
                    drive=d, label=f"t{d}", requested_seconds=0.0
                )
            ).index
            for d in range(2)
        ]
        assert chosen == [0, 1]  # second job lands on the idle arm
        kernel.run()
        assert pool.exchanges == 2
        # Both arms worked in parallel: the pool's summed busy time is
        # twice the makespan.
        assert kernel.now_seconds == pytest.approx(30.0)
        assert pool.busy_seconds == pytest.approx(60.0)
        assert pool.occupancies(30.0) == [
            pytest.approx(1.0),
            pytest.approx(1.0),
        ]
