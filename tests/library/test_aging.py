"""Media aging: wear-driven drift and bad spots.

The pristine contract first — zero completed mount cycles must leave
both the locate model and the fault plan untouched, which is what
keeps an ``aging=``-configured system bit-identical to the seed until
a cartridge is actually remounted — then the wear curves (drift and
bad-spot probability grow with cycles and cap), and finally the
end-to-end effect inside :class:`MultiDriveSystem`: remounted
cartridges drift away from the scheduler's pristine plan and start
throwing read faults from the resilience taxonomy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import tiny_tape
from repro.library import (
    Cartridge,
    LibraryRequest,
    MediaAgingModel,
    MultiDriveSystem,
)
from repro.model.locate import LocateTimeModel
from repro.online import BatchPolicy


@pytest.fixture()
def base_model():
    return LocateTimeModel(tiny_tape(seed=3))


class TestWearCurves:
    def test_zero_cycles_is_pristine(self, base_model):
        aging = MediaAgingModel()
        assert aging.aged_model(base_model, "t0", 0) is base_model
        assert aging.read_fault_probability(0) == 0.0

    def test_drift_grows_with_cycles(self, base_model):
        aging = MediaAgingModel(
            drift_bias_seconds=0.1, drift_noise_seconds=0.0
        )
        pairs = [(0, d) for d in range(1, base_model.geometry.total_segments)]
        sources = np.asarray([s for s, _ in pairs])
        destinations = np.asarray([d for _, d in pairs])
        base = base_model.times(sources, destinations)
        young = aging.aged_model(base_model, "t0", 1).times(
            sources, destinations
        )
        old = aging.aged_model(base_model, "t0", 10).times(
            sources, destinations
        )
        # Bias only applies to short locates, so compare sums over the
        # whole pair set: older media is never faster.
        assert np.all(young >= base)
        assert np.all(old >= young)
        assert old.sum() > base.sum()

    def test_drift_plateaus_at_the_cycle_cap(self, base_model):
        aging = MediaAgingModel(max_drift_cycles=5)
        capped = aging.aged_model(base_model, "t0", 5)
        beyond = aging.aged_model(base_model, "t0", 50)
        assert capped.locate_time(0, 7) == beyond.locate_time(0, 7)

    def test_fault_probability_is_linear_then_capped(self):
        aging = MediaAgingModel(
            bad_spot_probability=0.01, max_bad_spot_probability=0.05
        )
        assert aging.read_fault_probability(3) == pytest.approx(0.03)
        assert aging.read_fault_probability(5) == pytest.approx(0.05)
        assert aging.read_fault_probability(500) == pytest.approx(0.05)
        assert aging.any_faults

    def test_label_seed_differentiates_equally_old_media(
        self, base_model
    ):
        aging = MediaAgingModel(
            drift_bias_seconds=0.0, drift_noise_seconds=0.5
        )
        a = aging.aged_model(base_model, "tape-a", 10)
        b = aging.aged_model(base_model, "tape-b", 10)
        destinations = np.arange(1, base_model.geometry.total_segments)
        sources = np.zeros_like(destinations)
        assert not np.array_equal(
            a.times(sources, destinations),
            b.times(sources, destinations),
        )
        # ...but each cartridge's wear is deterministic.
        again = aging.aged_model(base_model, "tape-a", 10)
        assert np.array_equal(
            a.times(sources, destinations),
            again.times(sources, destinations),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MediaAgingModel(drift_bias_seconds=-1.0)
        with pytest.raises(ValueError):
            MediaAgingModel(bad_spot_probability=1.5)
        with pytest.raises(ValueError):
            MediaAgingModel(max_drift_cycles=-1)
        aging = MediaAgingModel()
        with pytest.raises(ValueError):
            aging.read_fault_probability(-1)
        with pytest.raises(ValueError):
            aging.aged_model(object(), "t0", -1)


def run_library(aging, seed=5, count=40):
    """Two tapes, one drive: every batch boundary forces a remount."""
    tapes = [Cartridge(f"t{i}", tiny_tape(seed=i + 1)) for i in range(2)]
    total = min(c.geometry.total_segments for c in tapes)
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, 6000.0, size=count))
    segments = rng.integers(0, total, size=count)
    picks = rng.integers(0, 2, size=count)
    requests = [
        LibraryRequest(
            arrival_seconds=float(arrivals[k]),
            label=f"t{int(picks[k])}",
            segment=int(segments[k]),
        )
        for k in range(count)
    ]
    system = MultiDriveSystem(
        tapes,
        drives=1,
        policy=BatchPolicy(max_batch=4),
        aging=aging,
    )
    stats = system.run(requests)
    return system, stats


class TestAgingInTheLibrary:
    def test_no_wear_configured_changes_nothing(self):
        baseline_system, baseline = run_library(aging=None)
        system, stats = run_library(
            aging=MediaAgingModel(
                drift_bias_seconds=0.0,
                drift_noise_seconds=0.0,
                bad_spot_probability=0.0,
            )
        )
        # An aging model that cannot wear anything is bit-identical
        # to no aging model at all.
        assert stats.samples == baseline.samples
        assert system.exchanges == baseline_system.exchanges
        assert system.lost == baseline_system.lost == 0

    def test_drift_slows_remounted_cartridges(self):
        _, baseline = run_library(aging=None)
        system, aged = run_library(
            aging=MediaAgingModel(
                drift_bias_seconds=2.0,
                drift_noise_seconds=0.0,
                bad_spot_probability=0.0,
            )
        )
        # Remounts happened (wear accumulated) and the actual service
        # got slower than the pristine plan predicts.
        assert system.exchanges > 2
        assert aged.mean_seconds > baseline.mean_seconds
        assert system.lost == 0

    def test_bad_spots_eventually_fail_reads(self):
        system, _ = run_library(
            aging=MediaAgingModel(
                drift_bias_seconds=0.0,
                drift_noise_seconds=0.0,
                bad_spot_probability=0.5,
                max_bad_spot_probability=1.0,
            ),
            count=60,
        )
        assert len(system.failed) > 0
        assert system.lost == 0
