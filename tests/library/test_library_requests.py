"""Library requests and the multi-tape Poisson stream."""

import pytest

from repro.library.requests import (
    LibraryRequest,
    poisson_library_stream,
)
from repro.workload.arrivals import TimedRequest


class TestLibraryRequest:
    def test_timed_drops_the_label(self):
        request = LibraryRequest(
            arrival_seconds=3.5, label="alpha", segment=42, length=2
        )
        assert request.timed() == TimedRequest(
            arrival_seconds=3.5, segment=42, length=2
        )

    def test_default_length(self):
        request = LibraryRequest(0.0, "a", 1)
        assert request.length == 1

    def test_frozen(self):
        request = LibraryRequest(0.0, "a", 1)
        with pytest.raises(AttributeError):
            request.label = "b"


class TestPoissonLibraryStream:
    def test_deterministic_per_seed(self):
        first = poisson_library_stream(
            ["a", "b"], rate_per_hour=120.0, total_segments=100, seed=5
        )
        second = poisson_library_stream(
            ["a", "b"], rate_per_hour=120.0, total_segments=100, seed=5
        )
        assert first == second

    def test_seed_changes_the_stream(self):
        kwargs = dict(
            rate_per_hour=120.0, total_segments=100,
            horizon_seconds=7200.0,
        )
        assert poisson_library_stream(
            ["a"], seed=1, **kwargs
        ) != poisson_library_stream(["a"], seed=2, **kwargs)

    def test_targets_stay_in_range(self):
        requests = poisson_library_stream(
            ["a", "b", "c"], rate_per_hour=600.0, total_segments=50,
            seed=0, horizon_seconds=3600.0,
        )
        assert requests
        for request in requests:
            assert request.label in ("a", "b", "c")
            assert 0 <= request.segment < 50
            assert 0.0 < request.arrival_seconds < 3600.0

    def test_arrivals_are_increasing(self):
        requests = poisson_library_stream(
            ["a"], rate_per_hour=600.0, total_segments=10, seed=3
        )
        arrivals = [r.arrival_seconds for r in requests]
        assert arrivals == sorted(arrivals)

    def test_every_label_is_eventually_targeted(self):
        labels = ["a", "b", "c", "d"]
        requests = poisson_library_stream(
            labels, rate_per_hour=1200.0, total_segments=10, seed=0,
            horizon_seconds=3600.0,
        )
        assert {r.label for r in requests} == set(labels)

    def test_rate_scales_the_count(self):
        slow = poisson_library_stream(
            ["a"], rate_per_hour=60.0, total_segments=10, seed=0,
            horizon_seconds=3600.0 * 4,
        )
        fast = poisson_library_stream(
            ["a"], rate_per_hour=600.0, total_segments=10, seed=0,
            horizon_seconds=3600.0 * 4,
        )
        assert len(fast) > len(slow) * 4

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(labels=[], rate_per_hour=1.0), "labels"),
            (dict(labels=["a"], rate_per_hour=0.0), "rate_per_hour"),
            (
                dict(
                    labels=["a"], rate_per_hour=1.0,
                    horizon_seconds=0.0,
                ),
                "horizon_seconds",
            ),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            poisson_library_stream(**kwargs)
