"""The discrete-event simulation kernel."""

import pytest

from repro.exceptions import LibraryError
from repro.library.events import (
    BatchDispatched,
    MountCompleted,
    MountStarted,
    QueueDeadline,
    RequestArrived,
    RobotIdle,
    SimEvent,
)
from repro.library.kernel import EventKernel


class TestScheduling:
    def test_pops_in_time_order(self):
        kernel = EventKernel()
        seen = []
        kernel.on(RequestArrived, lambda e: seen.append(e.request_index))
        kernel.schedule(5.0, RequestArrived(request_index=1))
        kernel.schedule(1.0, RequestArrived(request_index=0))
        kernel.schedule(9.0, RequestArrived(request_index=2))
        kernel.run()
        assert seen == [0, 1, 2]

    def test_equal_time_breaks_on_priority(self):
        # Arrival (0) < mount start (10) < mount complete (20) <
        # robot idle (25) < dispatch (30) < deadline (40).
        kernel = EventKernel()
        seen = []
        kernel.on(RequestArrived, lambda e: seen.append("arrive"))
        kernel.on(MountStarted, lambda e: seen.append("start"))
        kernel.on(MountCompleted, lambda e: seen.append("complete"))
        kernel.on(RobotIdle, lambda e: seen.append("idle"))
        kernel.on(BatchDispatched, lambda e: seen.append("dispatch"))
        kernel.on(QueueDeadline, lambda e: seen.append("deadline"))
        kernel.schedule(3.0, QueueDeadline(label="a"))
        kernel.schedule(3.0, BatchDispatched(drive=0, label="a"))
        kernel.schedule(3.0, RobotIdle())
        kernel.schedule(
            3.0,
            MountCompleted(
                drive=0, label="a", requested_seconds=0.0,
                robot_seconds=30.0,
            ),
        )
        kernel.schedule(3.0, MountStarted(drive=0, label="a"))
        kernel.schedule(3.0, RequestArrived(request_index=0))
        kernel.run()
        assert seen == [
            "arrive", "start", "complete", "idle", "dispatch",
            "deadline",
        ]

    def test_equal_priority_keeps_insertion_order(self):
        kernel = EventKernel()
        seen = []
        kernel.on(RequestArrived, lambda e: seen.append(e.request_index))
        for index in (3, 1, 2):
            kernel.schedule(7.0, RequestArrived(request_index=index))
        kernel.run()
        assert seen == [3, 1, 2]

    def test_scheduling_into_the_past_raises(self):
        kernel = EventKernel()
        kernel.schedule(10.0, RequestArrived(request_index=0))
        kernel.run()
        assert kernel.now_seconds == pytest.approx(10.0)
        with pytest.raises(LibraryError, match="clock is already"):
            kernel.schedule(9.0, RequestArrived(request_index=1))

    def test_scheduling_at_now_is_allowed(self):
        kernel = EventKernel()
        fired = []
        kernel.on(RequestArrived, lambda e: fired.append(e.request_index))

        def chain(event):
            # A handler may schedule more work at the current instant.
            kernel.schedule(kernel.now_seconds, RequestArrived(1))

        kernel.on(RobotIdle, chain)
        kernel.schedule(4.0, RobotIdle())
        kernel.run()
        assert fired == [1]


class TestRun:
    def test_run_returns_dispatch_count(self):
        kernel = EventKernel()
        for index in range(4):
            kernel.schedule(float(index), RequestArrived(index))
        assert kernel.run() == 4
        assert kernel.events_dispatched == 4
        assert kernel.idle

    def test_horizon_leaves_later_events_queued(self):
        kernel = EventKernel()
        for index in range(5):
            kernel.schedule(float(index), RequestArrived(index))
        assert kernel.run(until_seconds=2.0) == 3
        # The clock stops at the last fired event, not the horizon.
        assert kernel.now_seconds == pytest.approx(2.0)
        assert len(kernel) == 2
        assert kernel.peek_seconds() == pytest.approx(3.0)

    def test_step_on_empty_heap(self):
        kernel = EventKernel()
        assert kernel.step() is None
        assert kernel.peek_seconds() is None
        assert kernel.idle

    def test_step_returns_the_event(self):
        kernel = EventKernel()
        event = RequestArrived(request_index=9)
        kernel.schedule(1.5, event)
        assert kernel.step() is event
        assert kernel.now_seconds == pytest.approx(1.5)

    def test_handlers_fire_in_registration_order(self):
        kernel = EventKernel()
        seen = []
        kernel.on(RobotIdle, lambda e: seen.append("first"))
        kernel.on(RobotIdle, lambda e: seen.append("second"))
        kernel.schedule(0.0, RobotIdle())
        kernel.run()
        assert seen == ["first", "second"]

    def test_unhandled_events_are_dropped_silently(self):
        kernel = EventKernel()
        kernel.schedule(1.0, RobotIdle())
        assert kernel.run() == 1


class TestEventTaxonomy:
    def test_base_priority_is_mid_ranked(self):
        assert SimEvent.priority == 50

    def test_events_are_frozen(self):
        event = RequestArrived(request_index=0)
        with pytest.raises(AttributeError):
            event.request_index = 1

    def test_kernel_events_are_not_obs_events(self):
        # Kernel events stay internal: none carries the dotted ``name``
        # ClassVar that registers a class in the obs taxonomy.
        from repro.obs.events import EVENT_TYPES

        for cls in (
            RequestArrived, MountStarted, MountCompleted, RobotIdle,
            BatchDispatched, QueueDeadline,
        ):
            assert not hasattr(cls, "name")
            assert cls not in EVENT_TYPES.values()
