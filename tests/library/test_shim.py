"""The repro.online.library deprecation shim."""

import warnings

import pytest

from repro.library.cartridge import (
    Cartridge,
    DEFAULT_EXCHANGE_SECONDS,
    TapeLibrary,
)


class TestDeprecationShim:
    @pytest.fixture()
    def fresh_shim(self, monkeypatch):
        """The shim with its warned-once memory cleared."""
        import repro.online.library as shim

        monkeypatch.setattr(shim, "_warned", set())
        return shim

    def test_old_cartridge_path_warns_once(self, fresh_shim):
        with pytest.warns(
            DeprecationWarning, match="repro.library.cartridge"
        ):
            cls = fresh_shim.Cartridge
        assert cls is Cartridge

    def test_every_moved_name_resolves(self, fresh_shim):
        canonical = {
            "Cartridge": Cartridge,
            "DEFAULT_EXCHANGE_SECONDS": DEFAULT_EXCHANGE_SECONDS,
            "TapeLibrary": TapeLibrary,
        }
        for name in fresh_shim._MOVED:
            with pytest.warns(DeprecationWarning, match=name):
                resolved = getattr(fresh_shim, name)
            assert resolved is canonical[name]
        assert sorted(fresh_shim._MOVED) == dir(fresh_shim)

    def test_warns_exactly_once_per_name(self, fresh_shim):
        with pytest.warns(DeprecationWarning) as caught:
            fresh_shim.TapeLibrary
        assert len(caught) == 1
        # Second access: silent, even under -W error.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert fresh_shim.TapeLibrary is TapeLibrary
        with pytest.warns(DeprecationWarning) as caught:
            fresh_shim.Cartridge
        assert len(caught) == 1

    def test_shim_unknown_attribute_raises(self):
        import repro.online.library as shim

        with pytest.raises(AttributeError):
            shim.NoSuchName

    def test_package_reexports_stay_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.library import TapeLibrary as canonical
            from repro.online import TapeLibrary as compat  # noqa: F401

            assert compat is canonical

    def test_old_import_still_constructs_a_working_library(
        self, fresh_shim, tiny
    ):
        with pytest.warns(DeprecationWarning):
            library = fresh_shim.TapeLibrary(
                [fresh_shim.Cartridge("a", tiny)]
            )
        assert library.mount("a") == pytest.approx(
            DEFAULT_EXCHANGE_SECONDS
        )
