"""The live ``src/repro`` tree must be clean modulo the baseline.

These are the tests that make ``repro.lint`` a gate rather than a
demo: the shipped tree lints clean against the committed baseline,
the baseline may only ever shrink, and every advertised rule is
actually registered and exercised by the run.
"""

from __future__ import annotations

import json

from repro.lint import (
    REGISTRY,
    diff_baseline,
    finding_counts,
    load_baseline,
)

from conftest import REPO_ROOT

BASELINE_PATH = REPO_ROOT / "tools" / "lint_baseline.json"


def test_all_advertised_rules_are_registered():
    assert set(REGISTRY) == {
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
        "RPR007", "RPR008", "RPR009", "RPR010",
    }


def test_live_tree_is_clean_modulo_baseline(live_run):
    baseline = load_baseline(BASELINE_PATH)
    diff = diff_baseline(live_run.findings, baseline)
    assert diff.clean, "new lint findings:\n" + "\n".join(
        finding.render() for finding in diff.new
    )


def test_baseline_has_no_stale_entries(live_run):
    """The ratchet stays tight: fixed findings leave the baseline."""
    baseline = load_baseline(BASELINE_PATH)
    diff = diff_baseline(live_run.findings, baseline)
    assert diff.stale == {}, (
        "baseline entries outlived their findings — tighten with "
        "`repro lint src/repro --baseline tools/lint_baseline.json "
        "--update-baseline`"
    )


def test_baseline_can_only_shrink(live_run):
    """Every live finding bucket must fit inside its allowance.

    This is the only-downward direction stated bucket by bucket: no
    path::code pair may exceed what the committed file admits, so the
    counts in ``tools/lint_baseline.json`` can never be grown to let
    a new violation in without this test failing first.
    """
    baseline = load_baseline(BASELINE_PATH)
    live = finding_counts(live_run.findings)
    for key, count in sorted(live.items()):
        assert count <= baseline.get(key, 0), (
            f"{key}: {count} live finding(s) exceed the baseline "
            f"allowance of {baseline.get(key, 0)}"
        )


def test_no_unused_suppressions_in_live_tree(live_run):
    assert live_run.unused_suppressions == []


def test_every_live_suppression_has_a_reason():
    """Enforced by the parser, but assert it over the shipped tree."""
    from repro.lint.core import parse_suppressions

    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        suppressions, problems = parse_suppressions(
            source, path.as_posix()
        )
        assert problems == []
        for suppression in suppressions.values():
            assert suppression.reason


def test_committed_baseline_file_is_valid_json():
    payload = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert isinstance(payload["counts"], dict)
