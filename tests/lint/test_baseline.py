"""The baseline ratchet: findings may only ever go down."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exceptions import LintError
from repro.lint import (
    Finding,
    diff_baseline,
    finding_counts,
    load_baseline,
    save_baseline,
)


def _finding(path="src/m.py", line=1, code="RPR001"):
    return Finding(
        path=path, line=line, column=1, code=code, message="x"
    )


class TestCounts:
    def test_counts_bucket_by_path_and_code(self):
        findings = [
            _finding(line=1),
            _finding(line=9),
            _finding(code="RPR002"),
            _finding(path="src/n.py"),
        ]
        assert finding_counts(findings) == {
            "src/m.py::RPR001": 2,
            "src/m.py::RPR002": 1,
            "src/n.py::RPR001": 1,
        }


class TestDiff:
    def test_clean_when_within_allowance(self):
        findings = [_finding(line=4)]
        diff = diff_baseline(findings, {"src/m.py::RPR001": 1})
        assert diff.clean
        assert diff.new == []
        assert diff.tolerated == findings
        assert diff.stale == {}

    def test_line_moves_do_not_dirty_the_gate(self):
        diff = diff_baseline(
            [_finding(line=99)], {"src/m.py::RPR001": 1}
        )
        assert diff.clean

    def test_exceeding_allowance_is_new(self):
        diff = diff_baseline(
            [_finding(line=1), _finding(line=2)],
            {"src/m.py::RPR001": 1},
        )
        assert not diff.clean
        assert len(diff.new) == 1
        assert len(diff.tolerated) == 1

    def test_unknown_bucket_is_new(self):
        diff = diff_baseline([_finding()], {})
        assert not diff.clean

    def test_fixed_findings_leave_stale_entries(self):
        diff = diff_baseline([], {"src/m.py::RPR001": 2})
        assert diff.clean  # stale warns, never hides new findings
        assert diff.stale == {"src/m.py::RPR001": 2}


class TestFile:
    def test_save_load_roundtrip(self, tmp_path):
        target = tmp_path / "baseline.json"
        save_baseline(target, [_finding(), _finding(line=2)])
        assert load_baseline(target) == {"src/m.py::RPR001": 2}

    def test_missing_file_raises_lint_error(self, tmp_path):
        with pytest.raises(LintError, match="does not exist"):
            load_baseline(tmp_path / "absent.json")

    def test_corrupt_file_raises_lint_error(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("{not json", encoding="utf-8")
        with pytest.raises(LintError, match="corrupt"):
            load_baseline(target)

    def test_wrong_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(
            json.dumps({"version": 99, "counts": {}}), encoding="utf-8"
        )
        with pytest.raises(LintError, match="version"):
            load_baseline(target)

    def test_malformed_counts_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(
            json.dumps({"version": 1, "counts": {"k": 0}}),
            encoding="utf-8",
        )
        with pytest.raises(LintError, match="malformed"):
            load_baseline(target)
