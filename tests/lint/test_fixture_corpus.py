"""Every rule demonstrated on known-bad and known-clean snippets.

Each fixture is linted in isolation (directory fixtures as one run, so
cross-module rules see the whole mini-tree) and must produce exactly
the expected set of rule codes — known-bad snippets must trip their
rule, known-clean snippets must stay silent, and no fixture may
accidentally trip an unrelated rule.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: fixture path (relative to the corpus root) -> expected code set.
CORPUS = {
    "rpr001/bad_wall_clock.py": {"RPR001"},
    "rpr001/bad_unseeded_rng.py": {"RPR001"},
    "rpr001/clean_seeded_rng.py": set(),
    "rpr001/clean_perf_counter.py": set(),
    "rpr002/bad_float_literal_eq.py": {"RPR002"},
    "rpr002/bad_seconds_eq.py": {"RPR002"},
    "rpr002/clean_isclose.py": set(),
    "rpr002/clean_zero_sentinel.py": set(),
    "rpr003/bad_bare_except.py": {"RPR003"},
    "rpr003/bad_swallow_exception.py": {"RPR003"},
    "rpr003/bad_offtaxonomy_raise.py": {"RPR003"},
    "rpr003/clean_reraise.py": set(),
    "rpr003/clean_taxonomy_raise.py": set(),
    "rpr004/bad_unknown_publish": {"RPR004"},
    "rpr004/bad_dead_event": {"RPR004"},
    "rpr004/clean_registry": set(),
    "rpr004/clean_no_registry": set(),
    "rpr005/bad_stale_all.py": {"RPR005"},
    "rpr005/bad_broken_shim.py": {"RPR005"},
    "rpr005/clean_all.py": set(),
    "rpr005/clean_shim.py": set(),
    "rpr006/bad_bare_timeout.py": {"RPR006"},
    "rpr006/bad_ms_suffix.py": {"RPR006"},
    "rpr006/clean_seconds.py": set(),
    "rpr006/clean_hours.py": set(),
    "rpr007/bad_literal_seed.py": {"RPR007"},
    "rpr007/bad_transitive_seed": {"RPR007"},
    "rpr007/clean_threaded_seed.py": set(),
    "rpr007/clean_entry_constant.py": set(),
    "rpr008/bad_rng_into_pool.py": {"RPR008"},
    "rpr008/bad_rng_into_actor.py": {"RPR008"},
    "rpr008/clean_seed_handoff.py": set(),
    "rpr008/clean_local_rng.py": set(),
    "rpr009/bad_set_iteration.py": {"RPR009"},
    "rpr009/bad_listdir_to_sink.py": {"RPR009"},
    "rpr009/clean_sorted_first.py": set(),
    "rpr009/clean_order_insensitive.py": set(),
    "rpr010/bad_span_missing_phase.py": {"RPR010"},
    "rpr010/bad_phase_sum_drift.py": {"RPR010"},
    "rpr010/bad_unit_mix.py": {"RPR010"},
    "rpr010/clean_partition.py": set(),
    "rpr010/clean_converted_units.py": set(),
    "rpr000/bad_reasonless.py": {"RPR000"},
    "rpr000/bad_unknown_code.py": {"RPR000"},
    "rpr000/clean_suppressed.py": set(),
}


@pytest.mark.parametrize("relative", sorted(CORPUS))
def test_fixture(relative):
    path = FIXTURES / relative
    assert path.exists(), f"missing fixture {relative}"
    run = run_lint([path], root=FIXTURES)
    codes = {finding.code for finding in run.findings}
    assert codes == CORPUS[relative], (
        f"{relative}: expected {CORPUS[relative] or 'clean'}, got "
        + "\n".join(finding.render() for finding in run.findings)
    )


def test_every_rule_has_bad_and_clean_coverage():
    """>= 2 known-bad and >= 2 known-clean snippets per RPR code."""
    from repro.lint import REGISTRY

    for code in sorted(REGISTRY):
        family = code.lower()
        bad = [
            relative
            for relative, expected in CORPUS.items()
            if relative.startswith(family) and code in expected
        ]
        clean = [
            relative
            for relative, expected in CORPUS.items()
            if relative.startswith(family) and not expected
        ]
        assert len(bad) >= 2, f"{code}: need >= 2 known-bad fixtures"
        assert len(clean) >= 2, f"{code}: need >= 2 known-clean fixtures"


def test_suppressed_fixture_counts_the_suppression():
    run = run_lint(
        [FIXTURES / "rpr000" / "clean_suppressed.py"], root=FIXTURES
    )
    assert run.findings == []
    assert run.suppressed == 1
