"""Shared fixtures for the lint test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

#: Repository root (tests/lint/conftest.py -> repo).
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="session")
def repo_root() -> Path:
    """Repository root directory."""
    return REPO_ROOT


@pytest.fixture(scope="session")
def live_run():
    """One full-tree lint run shared by the live-tree tests."""
    from repro.lint import run_lint

    return run_lint([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
