"""Known-bad: suppressions must carry a written reason."""

value = 1  # repro: noqa RPR001
