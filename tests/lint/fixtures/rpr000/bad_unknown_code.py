"""Known-bad: suppressing a rule code that does not exist."""

value = 1  # repro: noqa RPR999 -- there is no such rule
