"""Known-clean: a real violation silenced by a well-formed suppression."""

import time

started = time.time()  # repro: noqa RPR001 -- fixture demonstrating the suppression syntax
