"""Known-clean: broad handler that re-raises after annotating."""


def execute_annotated(drive, segment: int) -> float:
    try:
        return drive.locate(segment)
    except Exception as error:
        error.add_note(f"while locating segment {segment}")
        raise
