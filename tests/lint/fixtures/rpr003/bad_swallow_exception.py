"""Known-bad: broad handler with no re-raise can eat a DriveFault."""


def execute_quietly(drive, segment: int) -> float | None:
    try:
        return drive.locate(segment)
    except Exception:
        return None
