"""Known-bad: bare except swallows everything."""


def read_or_default(drive, segment: int) -> float:
    try:
        return drive.read(segment)
    except:
        return 0.0
