"""Known-bad: raising types callers cannot catch precisely."""


def check_rate(rate: float) -> None:
    if rate < 0:
        raise Exception("negative rate")
    if rate > 1:
        raise RuntimeError("rate over 1")
