"""Known-clean: taxonomy types and sanctioned builtins only."""

from repro.exceptions import SchedulingError


class LocalSchedulingError(SchedulingError):
    pass


def order_batch(requests: list[int]) -> list[int]:
    if not isinstance(requests, list):
        raise TypeError("requests must be a list")
    if not requests:
        raise LocalSchedulingError("empty batch")
    return sorted(requests)
