"""Known-bad: the event carries a phase the span cannot reconcile."""

from dataclasses import dataclass


@dataclass
class BatchCompleted:
    locate_seconds: float
    transfer_seconds: float
    fault_seconds: float
    total_seconds: float


@dataclass
class BatchSpan:
    locate_seconds: float
    transfer_seconds: float
    total_seconds: float

    @property
    def phase_seconds(self):
        return self.locate_seconds + self.transfer_seconds
