"""Known-clean: unit conversion happens by multiplication at the
boundary, and only seconds are ever accumulated."""

SECONDS_PER_HOUR = 3600.0


def budget(elapsed_seconds, horizon_hours):
    horizon_seconds = horizon_hours * SECONDS_PER_HOUR
    return elapsed_seconds + horizon_seconds
