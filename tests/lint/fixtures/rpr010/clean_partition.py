"""Known-clean: all three layers carry the same closed phase set."""

from dataclasses import dataclass


@dataclass
class ExecutionResult:
    locate_seconds: float
    transfer_seconds: float
    total_seconds: float


@dataclass
class BatchCompleted:
    locate_seconds: float
    transfer_seconds: float
    total_seconds: float


@dataclass
class BatchSpan:
    locate_seconds: float
    transfer_seconds: float
    total_seconds: float

    @property
    def phase_seconds(self):
        return self.locate_seconds + self.transfer_seconds
