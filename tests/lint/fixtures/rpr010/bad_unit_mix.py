"""Known-bad: seconds and hours added without a conversion."""


def budget(elapsed_seconds, horizon_hours):
    return elapsed_seconds + horizon_hours
