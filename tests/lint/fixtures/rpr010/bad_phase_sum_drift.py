"""Known-bad: ``phase_seconds`` omits one phase and double-counts a
structural field — the partition identity silently opens."""

from dataclasses import dataclass


@dataclass
class BatchSpan:
    locate_seconds: float
    transfer_seconds: float
    rewind_seconds: float
    total_seconds: float

    @property
    def phase_seconds(self):
        return (
            self.locate_seconds
            + self.transfer_seconds
            + self.total_seconds
        )
