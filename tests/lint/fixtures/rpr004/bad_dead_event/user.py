"""Known-bad companion: only LiveEvent is ever published."""

from events import LiveEvent


def instrument(bus) -> None:
    bus.publish(LiveEvent(seconds=0.0))
