"""Mini taxonomy: one live event, one nobody ever publishes."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class Event:
    name: ClassVar[str] = "event"
    seconds: float


@dataclass(frozen=True)
class LiveEvent(Event):
    name: ClassVar[str] = "fixture.live"


@dataclass(frozen=True)
class DeadEvent(Event):
    name: ClassVar[str] = "fixture.dead"
