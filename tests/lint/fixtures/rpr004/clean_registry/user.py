"""Known-clean: publishes and subscribes only registered names."""

from events import HitEvent


def instrument(bus) -> list:
    hits = bus.collect("fixture.hit")
    bus.subscribe(print, kinds=("fixture.hit",))
    bus.publish(HitEvent(seconds=0.0))
    return hits
