"""Mini taxonomy: every registered event is published somewhere."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class Event:
    name: ClassVar[str] = "event"
    seconds: float


@dataclass(frozen=True)
class HitEvent(Event):
    name: ClassVar[str] = "fixture.hit"
