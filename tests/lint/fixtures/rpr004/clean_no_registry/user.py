"""Known-clean: no taxonomy in the linted set -> the rule stays quiet.

A single-package run (e.g. ``repro lint src/repro/cache``) cannot see
the registry, so publish sites here must not be guessed at.
"""


def instrument(bus, event) -> None:
    bus.publish(event)
    bus.collect("unknowable.name")
