"""Known-bad: publishes an event class the taxonomy never registered."""

from events import KnownEvent, UnregisteredEvent


def instrument(bus) -> None:
    bus.publish(KnownEvent(seconds=0.0, segment=1))
    bus.publish(UnregisteredEvent(seconds=1.0))
