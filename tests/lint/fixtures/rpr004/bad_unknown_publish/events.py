"""Mini taxonomy: one registered event."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class Event:
    name: ClassVar[str] = "event"
    seconds: float


@dataclass(frozen=True)
class KnownEvent(Event):
    name: ClassVar[str] = "fixture.known"
    segment: int
