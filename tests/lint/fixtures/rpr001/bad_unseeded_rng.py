"""Known-bad: unseeded / global-state randomness."""

import random

import numpy as np


def draw_segments(count: int) -> list[int]:
    rng = np.random.default_rng()
    jitter = random.random()
    return [int(rng.integers(0, 100) + jitter) for _ in range(count)]
