"""Known-clean: duration measurement is allowed (never simulated data)."""

import time


def measure(work) -> float:
    started = time.perf_counter()
    work()
    return time.perf_counter() - started
