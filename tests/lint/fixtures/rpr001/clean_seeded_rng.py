"""Known-clean: the seed arrives as a parameter."""

import numpy as np


def draw_segments(count: int, seed: int) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(value) for value in rng.integers(0, 100, size=count)]
