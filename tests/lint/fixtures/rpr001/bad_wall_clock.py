"""Known-bad: ambient clock reads inside simulation code."""

import time
from datetime import datetime


def stamp_arrival(segment: int) -> tuple[int, float, str]:
    arrived = time.time()
    label = datetime.now().isoformat()
    return segment, arrived, label
