"""Known-clean: the RNG stays in one scope; only plain data is
submitted to the pool."""

import random
from concurrent.futures import ProcessPoolExecutor


def work(values):
    return sum(values)


def run(seed):
    rng = random.Random(seed)
    values = [rng.random() for _ in range(8)]
    with ProcessPoolExecutor() as pool:
        future = pool.submit(work, values)
    return future.result()
