"""Known-bad: a live RNG object crosses a process-pool boundary."""

import random
from concurrent.futures import ProcessPoolExecutor


def work(rng):
    return rng.random()


def run(seed):
    rng = random.Random(seed)
    with ProcessPoolExecutor() as pool:
        future = pool.submit(work, rng)
    return future.result()
