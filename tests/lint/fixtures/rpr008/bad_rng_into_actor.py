"""Known-bad: an RNG handed to a kernel-actor ``schedule`` surface —
the draw order then depends on event interleaving, not the seed."""

import random


def install(kernel, seed):
    rng = random.Random(seed)
    kernel.schedule(0.0, rng)
