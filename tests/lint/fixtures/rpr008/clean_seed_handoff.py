"""Known-clean: the *seed* crosses the pool boundary, never the RNG —
each worker constructs its own generator from its own seed."""

import random
from concurrent.futures import ProcessPoolExecutor


def work(seed):
    rng = random.Random(seed)
    return rng.random()


def run(seeds):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(work, seed) for seed in seeds]
    return [future.result() for future in futures]
