"""Known-bad: RNGs constructed directly from hardcoded literal seeds."""

import random

import numpy as np


def build_generators():
    local = random.Random(42)
    vectorized = np.random.default_rng(7)
    return local, vectorized
