"""Helper whose ``seed`` parameter feeds an RNG constructor."""

import random


def make_rng(seed):
    return random.Random(seed)
