"""Known-bad: a literal seed laundered through one call hop."""

from rng_helper import make_rng


def sample():
    rng = make_rng(123)
    return rng.random()
