"""Known-clean: a module-level UPPER_CASE constant is the declared
entry-point seed — the one place a literal is supposed to live."""

import random

DEMO_SEED = 11


def main():
    rng = random.Random(DEMO_SEED)
    return rng.random()
