"""Known-clean: seeds arrive as parameters and stay parameters."""

import random

import numpy as np


def make_rng(seed):
    return random.Random(seed)


def draw(seed, count):
    rng = np.random.default_rng(seed)
    return [int(value) for value in rng.integers(0, 100, size=count)]
