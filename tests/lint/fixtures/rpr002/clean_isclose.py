"""Known-clean: tolerance comparison on float quantities."""

import math


def phases_reconcile(locate_seconds: float, total_seconds: float) -> bool:
    return math.isclose(
        locate_seconds, total_seconds, rel_tol=1e-9, abs_tol=1e-12
    )
