"""Known-clean: exact-zero and infinity sentinels are IEEE-exact."""

import math


def jitter_disabled(jitter_fraction: float) -> bool:
    return jitter_fraction == 0.0


def timeout_disabled(request_timeout_seconds: float) -> bool:
    return request_timeout_seconds == math.inf
