"""Known-bad: exact equality against a non-zero float literal."""


def is_complete(ratio: float) -> bool:
    return ratio == 1.0


def drifted(value: float) -> bool:
    return value != 0.5
