"""Known-bad: exact equality between accumulated time sums."""


def phases_reconcile(locate_seconds: float, total_seconds: float) -> bool:
    return locate_seconds == total_seconds
