"""Known-bad: __all__ exports a name the module never defines."""

present = 1

__all__ = ["present", "missing_export"]
