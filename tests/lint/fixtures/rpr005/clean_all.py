"""Known-clean: every __all__ entry resolves."""


def exported() -> int:
    return 1


CONSTANT = 2

__all__ = ["CONSTANT", "exported"]
