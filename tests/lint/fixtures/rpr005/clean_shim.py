"""Known-clean: a shim whose every moved name still resolves."""

_MOVED = ("moved_name",)

_TARGETS: dict[str, object] = {"moved_name": object()}


def __getattr__(name: str):
    try:
        return _TARGETS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
