"""Known-bad: a deprecation shim whose moved target no longer resolves."""

_MOVED = ("vanished_name",)

_TARGETS: dict[str, object] = {}


def __getattr__(name: str):
    try:
        return _TARGETS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
