"""Known-bad: iterating sets leaks hash order into the run."""


def collect(labels):
    pending = {label.strip() for label in labels}
    ordered = []
    for label in pending:
        ordered.append(label)
    return ordered


def merge(left, right):
    combined = set(left) | set(right)
    return [item for item in combined]
