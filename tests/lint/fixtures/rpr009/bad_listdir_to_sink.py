"""Known-bad: filesystem order flows into the heap and the output."""

import heapq
import json
import os


def enqueue(heap, directory):
    names = os.listdir(directory)
    heapq.heappush(heap, names)


def export(stream, directory):
    entries = list(os.listdir(directory))
    stream.write(json.dumps(entries))
