"""Known-clean: sets used only for membership and counting — order
never escapes."""


def audit(batch, allowed):
    seen = set(batch)
    unknown = seen - set(allowed)
    return len(unknown), ("primary" in seen)
