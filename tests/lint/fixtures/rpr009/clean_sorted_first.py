"""Known-clean: every unordered source is sorted before it orders
anything downstream."""

import json
import os


def collect(labels):
    pending = {label.strip() for label in labels}
    return [label for label in sorted(pending)]


def export(stream, directory):
    entries = sorted(os.listdir(directory))
    stream.write(json.dumps(entries))
