"""Known-clean: explicit _seconds suffixes everywhere."""

from dataclasses import dataclass


@dataclass
class RetryKnobs:
    backoff_seconds: float = 0.1
    budget_seconds: float = 120.0


def execute(schedule, timeout_seconds: float) -> None:
    del schedule, timeout_seconds
