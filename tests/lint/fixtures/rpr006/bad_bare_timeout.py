"""Known-bad: suffixless time-valued parameter names."""


def execute(schedule, timeout: float, delay: float = 0.0) -> None:
    del schedule, timeout, delay
