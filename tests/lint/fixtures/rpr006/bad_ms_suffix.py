"""Known-bad: sub-second unit suffixes on a public attribute."""

from dataclasses import dataclass


@dataclass
class RetryKnobs:
    backoff_ms: int = 100
    budget_minutes: float = 2.0
