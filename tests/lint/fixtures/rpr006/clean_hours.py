"""Known-clean: hour-scale workload knobs are explicitly exempt."""


def simulate(horizon_hours: float, rate_per_hour: float) -> float:
    return horizon_hours * rate_per_hour
