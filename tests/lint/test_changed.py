"""``repro lint --changed``: git-aware report narrowing.

The invariant under test: ``--changed`` narrows what is *reported*,
never what is *analyzed* — and degrades to full-tree reporting the
moment git cannot answer.
"""

from __future__ import annotations

import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.lint.changed import changed_rel_paths
from repro.lint.cli import main as lint_main
from repro.lint.engine import run_lint

_BAD = "import time\nNOW = time.time()\n"


def _git(repo: Path, *argv: str) -> None:
    subprocess.run(
        ["git", *argv],
        cwd=repo,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@example.invalid",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@example.invalid",
            "HOME": str(repo),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


@pytest.fixture()
def repo(tmp_path):
    """A tiny git repo with one committed clean file."""
    _git(tmp_path, "init", "-q")
    (tmp_path / "committed.py").write_text(_BAD, encoding="utf-8")
    _git(tmp_path, "add", "committed.py")
    _git(tmp_path, "commit", "-qm", "seed")
    return tmp_path


def test_changed_set_empty_on_clean_worktree(repo):
    assert changed_rel_paths(repo) == set()


def test_changed_set_sees_modified_and_untracked(repo):
    (repo / "committed.py").write_text(_BAD + "x = 1\n", encoding="utf-8")
    (repo / "fresh.py").write_text("y = 2\n", encoding="utf-8")
    (repo / "notes.txt").write_text("not python\n", encoding="utf-8")
    assert changed_rel_paths(repo) == {"committed.py", "fresh.py"}


def test_changed_returns_none_outside_a_repo(tmp_path):
    assert changed_rel_paths(tmp_path) is None


def test_report_filter_narrows_findings_not_analysis(repo):
    """Findings in unchanged files drop; the files are still parsed."""
    (repo / "fresh.py").write_text(_BAD, encoding="utf-8")
    run = run_lint([repo], root=repo, report_rel_paths={"fresh.py"})
    assert run.files_checked == 2
    assert {finding.path for finding in run.findings} == {"fresh.py"}
    unfiltered = run_lint([repo], root=repo)
    assert {finding.path for finding in unfiltered.findings} == {
        "committed.py",
        "fresh.py",
    }


def test_cross_module_rules_still_see_unchanged_files(repo):
    """A changed call site is flagged even when the seed-consuming
    helper lives in an unchanged, committed module."""
    (repo / "helper.py").write_text(
        textwrap.dedent(
            """\
            import random


            def make_rng(seed):
                return random.Random(seed)
            """
        ),
        encoding="utf-8",
    )
    _git(repo, "add", "helper.py")
    _git(repo, "commit", "-qm", "helper")
    (repo / "caller.py").write_text(
        textwrap.dedent(
            """\
            from helper import make_rng

            rng = make_rng(99)
            """
        ),
        encoding="utf-8",
    )
    run = run_lint(
        [repo], root=repo, report_rel_paths=changed_rel_paths(repo)
    )
    assert [finding.code for finding in run.findings] == ["RPR007"]
    assert run.findings[0].path == "caller.py"


def test_cli_changed_quick_exit_when_nothing_changed(
    repo, capsys, monkeypatch
):
    monkeypatch.chdir(repo)
    assert lint_main([str(repo), "--changed"]) == 0
    assert "no modified Python files" in capsys.readouterr().out


def test_cli_changed_reports_only_changed_files(
    repo, capsys, monkeypatch
):
    monkeypatch.chdir(repo)
    (repo / "fresh.py").write_text(_BAD, encoding="utf-8")
    assert lint_main([str(repo), "--changed"]) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out
    assert "committed.py" not in out


def test_cli_changed_falls_back_to_full_tree(
    tmp_path, capsys, monkeypatch
):
    """Outside a repo, --changed reports everything and says so."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "bad.py").write_text(_BAD, encoding="utf-8")
    assert lint_main([str(tmp_path), "--changed"]) == 1
    captured = capsys.readouterr()
    assert "full tree" in captured.err
    assert "bad.py" in captured.out
