"""The project graph: coverage, resolution, memoization, dumps.

The acceptance bar for the flow analyzer is *coverage*: every module
under ``src/repro`` must be a node in the graph, because a module the
graph cannot see is a module whose call sites the RNG-lineage
fixpoint silently skips.
"""

from __future__ import annotations

import json

from pathlib import Path

from repro.lint.engine import iter_python_files
from repro.lint.flow import (
    build_graph,
    module_graph_name,
    project_graph,
)

# Deliberately not `from conftest import REPO_ROOT`: that import
# resolves to the wrong conftest when benchmarks/ is collected in
# the same pytest invocation.
REPO_ROOT = Path(__file__).resolve().parents[2]


def _graph(live_run):
    assert live_run.project is not None
    return project_graph(live_run.project)


def test_graph_covers_every_module_under_src_repro(live_run):
    """Every .py file under src/repro is a graph node."""
    graph = _graph(live_run)
    files = iter_python_files([REPO_ROOT / "src" / "repro"])
    assert len(files) == len(graph.modules)
    for module in live_run.project.modules:
        name = module_graph_name(module)
        assert name in graph.modules, f"{module.rel_path} not in graph"
        assert graph.modules[name].rel_path == module.rel_path


def test_graph_module_names_are_import_names(live_run):
    """Packaged modules keep their dotted import names as node ids."""
    graph = _graph(live_run)
    assert "repro.lint.engine" in graph.modules
    assert "repro.workload.seed_stream" in graph.modules
    assert "repro.obs.trace" in graph.modules


def test_import_edges_are_project_internal(live_run):
    graph = _graph(live_run)
    engine = graph.modules["repro.lint.engine"]
    assert "repro.lint.core" in engine.imports
    assert "repro.lint.rules" in engine.imports
    for name, info in graph.modules.items():
        for imported in info.imports:
            assert imported in graph.modules, (
                f"{name} records an edge to {imported}, which is "
                "not a node"
            )
            assert imported != name


def test_symbol_table_holds_functions_and_classes(live_run):
    graph = _graph(live_run)
    assert "repro.lint.engine.run_lint" in graph.functions
    run_lint_info = graph.functions["repro.lint.engine.run_lint"]
    assert run_lint_info.params[0] == "paths"
    assert not run_lint_info.is_method
    assert graph.classes_named("ExecutionResult")
    assert graph.classes_named("BatchCompleted")
    assert graph.classes_named("BatchSpan")


def test_call_edges_resolve_across_modules(live_run):
    graph = _graph(live_run)
    sites = graph.calls_to("repro.lint.engine.load_module")
    assert any(
        site.caller == "repro.lint.engine.run_lint" for site in sites
    )
    # Unresolvable targets stay conservative, never guessed.
    for site in graph.calls:
        if site.callee == "<dynamic>":
            assert not site.internal


def test_graph_is_memoized_per_project(live_run):
    assert _graph(live_run) is _graph(live_run)


def test_build_graph_fresh_equals_memoized_shape(live_run):
    fresh = build_graph(live_run.project)
    memoized = _graph(live_run)
    assert set(fresh.modules) == set(memoized.modules)
    assert set(fresh.functions) == set(memoized.functions)
    assert len(fresh.calls) == len(memoized.calls)


def test_to_record_is_json_safe_and_consistent(live_run):
    record = _graph(live_run).to_record()
    payload = json.loads(json.dumps(record))
    assert payload["version"] == 1
    counts = payload["counts"]
    assert counts["modules"] == len(payload["modules"])
    assert counts["functions"] == len(payload["functions"])
    assert counts["classes"] == len(payload["classes"])
    assert counts["calls"] == len(payload["calls"])
    assert counts["internal_calls"] <= counts["calls"]
    internal = [
        site for site in payload["calls"] if site["internal"]
    ]
    assert internal, "a live tree with no internal call edges is wrong"
