"""Engine mechanics: suppressions, parse errors, determinism of output."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import run_lint
from repro.lint.core import parse_suppressions


def _write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


class TestSuppressionParsing:
    def test_trailing_comment_targets_its_own_line(self):
        source = "import time\nx = time.time()  # repro: noqa RPR001 -- demo\n"
        suppressions, problems = parse_suppressions(source, "f.py")
        assert problems == []
        assert set(suppressions) == {2}
        assert suppressions[2].codes == {"RPR001"}
        assert suppressions[2].reason == "demo"

    def test_comment_only_line_targets_next_code_line(self):
        source = textwrap.dedent(
            """\
            import time

            # repro: noqa RPR001 -- long justification lives
            # in a block above the statement
            x = time.time()
            """
        )
        suppressions, problems = parse_suppressions(source, "f.py")
        assert problems == []
        assert set(suppressions) == {5}
        assert suppressions[5].line == 3

    def test_multiple_codes_one_comment(self):
        source = "x = 1  # repro: noqa RPR001, RPR002 -- both\n"
        suppressions, _ = parse_suppressions(source, "f.py")
        assert suppressions[1].codes == {"RPR001", "RPR002"}

    def test_reasonless_suppression_is_malformed(self):
        source = "x = 1  # repro: noqa RPR001\n"
        suppressions, problems = parse_suppressions(source, "f.py")
        assert suppressions == {}
        assert [p.code for p in problems] == ["RPR000"]

    def test_suppression_inside_string_literal_is_ignored(self):
        source = "msg = 'use # repro: noqa RPR001 -- reason'\n"
        suppressions, problems = parse_suppressions(source, "f.py")
        assert suppressions == {}
        assert problems == []


class TestEngine:
    def test_syntax_error_becomes_rpr000(self, tmp_path):
        path = _write(tmp_path, "broken.py", "def f(:\n")
        run = run_lint([path], root=tmp_path)
        assert [f.code for f in run.findings] == ["RPR000"]
        assert "syntax error" in run.findings[0].message

    def test_suppressed_finding_is_dropped_and_counted(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            """\
            import time

            NOW = time.time()  # repro: noqa RPR001 -- test double
            """,
        )
        run = run_lint([path], root=tmp_path)
        assert run.findings == []
        assert run.suppressed == 1
        assert run.unused_suppressions == []

    def test_unused_suppression_is_reported(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "x = 1  # repro: noqa RPR001 -- nothing here to silence\n",
        )
        run = run_lint([path], root=tmp_path)
        assert run.findings == []
        assert run.unused_suppressions == [("mod.py", 1)]

    def test_suppression_with_unknown_code_is_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "x = 1  # repro: noqa RPR998 -- no such rule\n",
        )
        run = run_lint([path], root=tmp_path)
        assert [f.code for f in run.findings] == ["RPR000"]
        assert "RPR998" in run.findings[0].message

    def test_findings_are_sorted_and_stable(self, tmp_path):
        _write(
            tmp_path,
            "b.py",
            "import time\nx = time.time()\ny = time.time()\n",
        )
        _write(tmp_path, "a.py", "import time\nz = time.time()\n")
        first = run_lint([tmp_path], root=tmp_path)
        second = run_lint([tmp_path], root=tmp_path)
        assert first.findings == second.findings
        assert [f.path for f in first.findings] == ["a.py", "b.py", "b.py"]
        assert first.files_checked == 2

    def test_directory_and_file_inputs_deduplicate(self, tmp_path):
        path = _write(tmp_path, "mod.py", "x = 1\n")
        run = run_lint([tmp_path, path], root=tmp_path)
        assert run.files_checked == 1
