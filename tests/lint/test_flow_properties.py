"""Property: flow findings are invariant under alpha-renaming.

The flow analyses reason about *structure* — call edges, parameter
positions, taint propagation — never about what things are called
(the one deliberate exception: UPPER_CASE entry-point seed
constants, which is why the renaming strategy below stays
lowercase).  Relabeling every module and symbol in a program must
therefore produce the identical finding set, code for code and line
for line.
"""

from __future__ import annotations

import keyword
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import run_lint
from repro.lint.flow import flow_rules

#: Names that collide with the analyses' own vocabulary or builtins.
_RESERVED = {
    "random",
    "seed",
    "rng",
    "set",
    "sorted",
    "list",
    "os",
    "heapq",
    "json",
    "self",
    "cls",
}

_identifier = (
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz",
        min_size=2,
        max_size=8,
    )
    .filter(lambda name: not keyword.iskeyword(name))
    .filter(lambda name: name not in _RESERVED)
)

_labels = st.lists(
    _identifier, min_size=4, max_size=4, unique=True
)


def _bad_program(labels):
    """A transitive literal-seed violation, under arbitrary names."""
    helper_mod, caller_mod, factory, variable = labels
    helper = (
        "import random\n"
        "\n"
        "\n"
        f"def {factory}(seed):\n"
        "    return random.Random(seed)\n"
    )
    caller = (
        f"from {helper_mod} import {factory}\n"
        "\n"
        f"{variable} = {factory}(17)\n"
    )
    return helper_mod, helper, caller_mod, caller


def _clean_program(labels):
    """The same shape with the seed threaded — never a finding."""
    helper_mod, caller_mod, factory, func = labels
    helper = (
        "import random\n"
        "\n"
        "\n"
        f"def {factory}(seed):\n"
        "    return random.Random(seed)\n"
    )
    caller = (
        f"from {helper_mod} import {factory}\n"
        "\n"
        "\n"
        f"def {func}(seed):\n"
        f"    return {factory}(seed)\n"
    )
    return helper_mod, helper, caller_mod, caller


def _lint(helper_mod, helper, caller_mod, caller):
    # A fresh directory per example: Hypothesis reruns this body many
    # times and stale modules from earlier examples must not leak in.
    with tempfile.TemporaryDirectory() as name:
        root = Path(name)
        (root / f"{helper_mod}.py").write_text(
            helper, encoding="utf-8"
        )
        (root / f"{caller_mod}.py").write_text(
            caller, encoding="utf-8"
        )
        run = run_lint([root], rules=flow_rules(), root=root)
    return [
        (finding.path.split("/")[-1], finding.line, finding.code)
        for finding in run.findings
    ]


@settings(max_examples=25, deadline=None)
@given(labels=_labels)
def test_bad_finding_survives_any_relabeling(labels):
    helper_mod, helper, caller_mod, caller = _bad_program(labels)
    found = _lint(helper_mod, helper, caller_mod, caller)
    assert found == [(f"{caller_mod}.py", 3, "RPR007")]


@settings(max_examples=25, deadline=None)
@given(labels=_labels)
def test_clean_program_stays_clean_under_any_relabeling(labels):
    helper_mod, helper, caller_mod, caller = _clean_program(labels)
    assert _lint(helper_mod, helper, caller_mod, caller) == []
