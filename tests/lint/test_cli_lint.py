"""The ``repro lint`` CLI: exit codes, JSON schema, baseline flags."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _write_bad(tmp_path: Path) -> Path:
    path = tmp_path / "bad.py"
    path.write_text(
        textwrap.dedent(
            """\
            import time

            NOW = time.time()
            """
        ),
        encoding="utf-8",
    )
    return path


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_violation_exits_one(tmp_path, capsys):
    _write_bad(tmp_path)
    assert lint_main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out


def test_fixture_violation_fails_via_repro_cli(capsys):
    """`repro lint` dispatches from the main CLI and fails on bad input."""
    bad = FIXTURES / "rpr001" / "bad_wall_clock.py"
    assert repro_main(["lint", str(bad)]) == 1
    assert "RPR001" in capsys.readouterr().out


def test_json_report_schema(tmp_path, capsys):
    _write_bad(tmp_path)
    assert lint_main([str(tmp_path), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["summary"] == {"RPR001": 1}
    [finding] = payload["findings"]
    assert finding["code"] == "RPR001"
    assert finding["path"].endswith("bad.py")
    codes = [rule["code"] for rule in payload["rules"]]
    assert codes == sorted(codes)
    assert {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
            "RPR006", "RPR007", "RPR008", "RPR009",
            "RPR010"} <= set(codes)


def test_baseline_tolerates_known_findings(tmp_path, capsys):
    _write_bad(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert lint_main(
        [str(tmp_path), "--baseline", str(baseline), "--update-baseline"]
    ) == 0
    capsys.readouterr()
    assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0
    assert "tolerated" in capsys.readouterr().out


def test_baseline_rejects_new_findings(tmp_path, capsys):
    _write_bad(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert lint_main(
        [str(tmp_path), "--baseline", str(baseline), "--update-baseline"]
    ) == 0
    (tmp_path / "worse.py").write_text(
        "import time\ny = time.time()\n", encoding="utf-8"
    )
    capsys.readouterr()
    assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 1


def test_stale_baseline_warns_and_strict_fails(tmp_path, capsys):
    bad = _write_bad(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert lint_main(
        [str(tmp_path), "--baseline", str(baseline), "--update-baseline"]
    ) == 0
    bad.write_text("x = 1\n", encoding="utf-8")  # fix the violation
    capsys.readouterr()
    assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0
    assert "stale baseline" in capsys.readouterr().out
    assert lint_main(
        [str(tmp_path), "--baseline", str(baseline), "--strict-baseline"]
    ) == 1


def test_missing_baseline_is_usage_error(tmp_path, capsys):
    _write_bad(tmp_path)
    assert lint_main(
        [str(tmp_path), "--baseline", str(tmp_path / "absent.json")]
    ) == 2
    assert "error" in capsys.readouterr().err


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                 "RPR006", "RPR007", "RPR008", "RPR009", "RPR010"):
        assert code in out


def test_flow_only_ignores_per_module_rules(tmp_path, capsys):
    """--flow runs RPR007-RPR010 and nothing else."""
    _write_bad(tmp_path)  # RPR001 bait the flow rules must skip
    assert lint_main([str(tmp_path), "--flow"]) == 0
    capsys.readouterr()
    (tmp_path / "seeded.py").write_text(
        "import random\nrng = random.Random(42)\n", encoding="utf-8"
    )
    assert lint_main([str(tmp_path), "--flow"]) == 1
    out = capsys.readouterr().out
    assert "RPR007" in out
    assert "RPR001" not in out


def test_flow_mode_accepts_foreign_suppressions(tmp_path, capsys):
    """A valid RPR001 suppression is not 'unknown' under --flow."""
    (tmp_path / "ok.py").write_text(
        "import time\n"
        "NOW = time.time()  # repro: noqa RPR001 -- test clock\n",
        encoding="utf-8",
    )
    assert lint_main([str(tmp_path), "--flow"]) == 0
    assert "RPR000" not in capsys.readouterr().out


def test_graph_dump_writes_artifact(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "def helper():\n    return 1\n\n\nvalue = helper()\n",
        encoding="utf-8",
    )
    artifact = tmp_path / "graph.json"
    assert lint_main(
        [str(tmp_path / "mod.py"), "--graph-dump", str(artifact)]
    ) == 0
    payload = json.loads(artifact.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert payload["counts"]["modules"] == 1
    assert payload["counts"]["internal_calls"] == 1
