"""Shared fixtures.

Expensive objects (full-size tapes, their models) are session-scoped;
everything built from them in tests must treat them as immutable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import generate_tape, tiny_tape
from repro.model import LocateTimeModel


@pytest.fixture(scope="session")
def tiny():
    """A miniature tape: 4 tracks, a few hundred segments."""
    return tiny_tape(seed=3)


@pytest.fixture(scope="session")
def tiny_model(tiny):
    """Locate model for the miniature tape."""
    return LocateTimeModel(tiny)


@pytest.fixture(scope="session")
def full_tape():
    """A full-size (622,058 segment) synthetic cartridge."""
    return generate_tape(seed=1)


@pytest.fixture(scope="session")
def full_model(full_tape):
    """Locate model for the full-size cartridge."""
    return LocateTimeModel(full_tape)


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


def pytest_addoption(parser):
    """Golden-fixture regeneration (see tests/experiments/test_golden.py).

    Run ``pytest tests/experiments/test_golden.py --regen-golden`` after
    an *intentional* output change to rewrite the frozen JSON fixtures;
    the regenerating run still executes the comparison, so a regen
    that fails to round-trip fails loudly.
    """
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/experiments/golden/*.json from the current code",
    )


@pytest.fixture()
def regen_golden(request):
    """Whether this run should rewrite the golden fixtures."""
    return request.config.getoption("--regen-golden")
