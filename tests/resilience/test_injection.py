"""Deterministic fault injection at the drive boundary."""

import pytest

from repro.drive import SimulatedDrive
from repro.exceptions import DriveReset, LocateFault, ReadFault
from repro.obs import EventBus
from repro.resilience import FaultInjector, FaultPlan


class TestFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"locate_fault_probability": -0.1},
            {"locate_fault_probability": 1.1},
            {"read_fault_probability": 2.0},
            {"reset_probability": -1.0},
            {"locate_fault_probability": 0.7, "reset_probability": 0.5},
            {"locate_penalty_seconds": -1.0},
            {"reset_penalty_seconds": -1.0},
            {"read_penalty_seconds": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_any_faults(self):
        assert not FaultPlan().any_faults
        assert FaultPlan(locate_fault_probability=0.1).any_faults
        assert FaultPlan(read_fault_probability=0.1).any_faults
        assert FaultPlan(reset_probability=0.1).any_faults


class TestTransparency:
    def test_zero_rates_change_nothing(self, tiny_model):
        plain = SimulatedDrive(tiny_model)
        wrapped = FaultInjector(SimulatedDrive(tiny_model), FaultPlan())
        for segment in (5, 120, 3, 77):
            assert wrapped.locate(segment) == plain.locate(segment)
            assert wrapped.read() == plain.read()
        assert wrapped.position == plain.position
        assert wrapped.clock_seconds == plain.clock_seconds
        assert wrapped.rewind() == plain.rewind()
        assert wrapped.faults_injected == 0

    def test_proxied_state(self, tiny_model, tiny):
        wrapped = FaultInjector(SimulatedDrive(tiny_model), FaultPlan())
        assert wrapped.geometry is tiny
        assert wrapped.model is tiny_model
        assert wrapped.events == wrapped.inner.events

    def test_service_composes_locate_and_read(self, tiny_model):
        wrapped = FaultInjector(SimulatedDrive(tiny_model), FaultPlan())
        plain = SimulatedDrive(tiny_model)
        assert wrapped.service(42, 2) == plain.locate(42) + plain.read(2)


class TestInjection:
    def _faulting(self, model, **kwargs):
        return FaultInjector(
            SimulatedDrive(model), FaultPlan(**kwargs)
        )

    def _first_locate_fault(self, injector, segments):
        for segment in segments:
            try:
                injector.locate(segment)
            except LocateFault as fault:
                return segment, fault
        pytest.fail("no locate fault injected over the sweep")

    def test_locate_fault_carries_context_and_charges_time(
        self, tiny_model
    ):
        injector = self._faulting(
            tiny_model, locate_fault_probability=0.3, seed=5
        )
        before_position = None
        for segment in range(0, 200, 7):
            before_clock = injector.clock_seconds
            before_position = injector.position
            try:
                injector.locate(segment)
            except LocateFault as fault:
                assert fault.segment == segment
                assert fault.position == before_position
                assert fault.penalty_seconds > 0
                assert injector.clock_seconds == pytest.approx(
                    before_clock + fault.penalty_seconds
                )
                # Head did not move.
                assert injector.position == before_position
                assert injector.fault_counts["locate"] >= 1
                return
        pytest.fail("no locate fault injected over the sweep")

    def test_read_fault_keeps_head_and_charges_transfer(
        self, tiny_model
    ):
        injector = self._faulting(
            tiny_model, read_fault_probability=0.5, seed=3
        )
        injector.locate(10)
        for _ in range(50):
            before_clock = injector.clock_seconds
            position = injector.position
            try:
                injector.read()
            except ReadFault as fault:
                assert fault.segment == position
                assert fault.penalty_seconds == pytest.approx(
                    tiny_model.segment_transfer_seconds
                )
                assert injector.position == position
                assert injector.clock_seconds == pytest.approx(
                    before_clock + fault.penalty_seconds
                )
                return
        pytest.fail("no read fault injected over the sweep")

    def test_reset_rewinds_to_bot(self, tiny_model):
        injector = self._faulting(
            tiny_model, reset_probability=0.4, seed=7
        )
        injector.inner.locate(150)
        for segment in range(0, 300, 11):
            try:
                injector.locate(segment)
            except DriveReset as fault:
                assert injector.position == 0
                assert fault.penalty_seconds == pytest.approx(30.0)
                assert injector.fault_counts["reset"] >= 1
                return
        pytest.fail("no reset injected over the sweep")

    def test_runs_replay_identically(self, tiny_model):
        def trace(seed):
            injector = self._faulting(
                tiny_model,
                locate_fault_probability=0.2,
                read_fault_probability=0.1,
                seed=seed,
            )
            outcomes = []
            for segment in range(0, 150, 5):
                try:
                    injector.locate(segment)
                    injector.read()
                    outcomes.append("ok")
                except LocateFault:
                    outcomes.append("locate")
                except ReadFault:
                    outcomes.append("read")
            return outcomes, injector.clock_seconds

        assert trace(9) == trace(9)
        assert trace(9) != trace(10)

    def test_retry_sees_a_fresh_draw(self, tiny_model):
        injector = self._faulting(
            tiny_model, locate_fault_probability=0.3, seed=5
        )
        segment, _ = self._first_locate_fault(
            injector, range(0, 200, 7)
        )
        # The fault is transient: enough immediate retries of the same
        # locate eventually succeed (each consumes a fresh draw).
        for _ in range(64):
            try:
                injector.locate(segment)
                break
            except LocateFault:
                continue
        assert injector.position == segment

    def test_faults_publish_events(self, tiny_model):
        bus = EventBus()
        collected = bus.collect("fault.injected")
        injector = FaultInjector(
            SimulatedDrive(tiny_model),
            FaultPlan(locate_fault_probability=0.3, seed=5),
            bus=bus,
        )
        for segment in range(0, 200, 7):
            try:
                injector.locate(segment)
            except LocateFault:
                pass
        assert len(collected) == injector.faults_injected > 0
        event = collected[0]
        assert event.kind == "locate"
        assert event.penalty_seconds > 0

    def test_wait_advances_only_the_clock(self, tiny_model):
        injector = self._faulting(tiny_model)
        clock = injector.clock_seconds
        injector.wait(4.5)
        assert injector.clock_seconds == pytest.approx(clock + 4.5)
        assert injector.inner.clock_seconds == pytest.approx(clock)
        with pytest.raises(ValueError):
            injector.wait(-1.0)

    def test_out_of_range_segment_still_checked(self, tiny_model, tiny):
        injector = self._faulting(
            tiny_model, locate_fault_probability=0.5
        )
        with pytest.raises(Exception):
            injector.locate(tiny.total_segments + 10)
