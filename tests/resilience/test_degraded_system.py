"""Graceful degradation in the online serving loop."""

import pytest

from repro.cache.store import SegmentCache
from repro.cache.system import CachedTertiaryStorageSystem
from repro.obs import EventBus
from repro.online.batch_queue import BatchPolicy
from repro.online.system import TertiaryStorageSystem
from repro.resilience import FaultPlan, ResilienceConfig, RetryPolicy
from repro.workload.arrivals import PoissonArrivals


def _requests(tiny, count=40, rate=240.0, seed=0):
    arrivals = PoissonArrivals(
        rate_per_hour=rate, total_segments=tiny.total_segments, seed=seed
    )
    return arrivals.batch(count / rate * 3600.0)


def _system(tiny, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch=8))
    return TertiaryStorageSystem(geometry=tiny, **kwargs)


def _permanent(failed_events):
    """``request.failed`` fires at two levels: the executor reports each
    batch-level retry exhaustion (the request may still be requeued),
    the system reports the permanent give-up.  Keep the latter."""
    return [
        e for e in failed_events
        if e.reason == "requeue budget exhausted"
    ]


class TestRequeue:
    def test_faulted_requests_requeue_then_complete(self, tiny):
        bus = EventBus()
        failed_events = bus.collect("request.failed")
        system = _system(
            tiny,
            bus=bus,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2), max_requeues=5
            ),
            fault_plan=FaultPlan(
                locate_fault_probability=0.35, seed=3
            ),
        )
        requests = _requests(tiny)
        stats = system.run(requests)
        # Every request eventually completed (possibly after requeues).
        assert stats.count == len(requests)
        assert system.failed == []
        assert _permanent(failed_events) == []
        assert system.requeues > 0
        assert system.drive.faults_injected > 0

    def test_requeue_budget_exhaustion_surfaces_failures(self, tiny):
        bus = EventBus()
        failed_events = bus.collect("request.failed")
        system = _system(
            tiny,
            bus=bus,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1), max_requeues=0
            ),
            fault_plan=FaultPlan(
                locate_fault_probability=0.45, seed=2
            ),
        )
        requests = _requests(tiny)
        stats = system.run(requests)
        # The run terminates, and the books balance: every request is
        # either a recorded completion or a surfaced failure.
        assert len(system.failed) > 0
        assert stats.count + len(system.failed) == len(requests)
        assert system.requeues == 0
        assert len(_permanent(failed_events)) == len(system.failed)

    def test_requeued_request_keeps_original_arrival(self, tiny):
        system = _system(
            tiny,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2), max_requeues=5
            ),
            fault_plan=FaultPlan(
                locate_fault_probability=0.35, seed=3
            ),
        )
        requests = _requests(tiny)
        stats = system.run(requests)
        if system.requeues == 0:
            pytest.skip("fault pattern produced no requeues")
        # A requeued request waits through at least one extra batch, so
        # its response time (measured from the *original* arrival)
        # exceeds anything a clean run produces.
        clean = _system(tiny)
        clean_stats = clean.run(requests)
        assert stats.max_seconds > clean_stats.max_seconds

    def test_without_resilience_behaviour_is_unchanged(self, tiny):
        requests = _requests(tiny)
        plain = _system(tiny)
        plain_stats = plain.run(requests)
        hardened = _system(tiny, resilience=ResilienceConfig())
        hardened_stats = hardened.run(requests)
        assert hardened_stats.samples == plain_stats.samples
        assert hardened.failed == []


class TestDegradedMode:
    def test_blown_schedule_budget_falls_back_to_sort(self, tiny):
        bus = EventBus()
        degraded_events = bus.collect("system.degraded")
        system = _system(
            tiny,
            bus=bus,
            resilience=ResilienceConfig(
                schedule_wall_budget_seconds=0.0
            ),
        )
        requests = _requests(tiny)
        stats = system.run(requests)
        assert stats.count == len(requests)
        assert system.degraded
        # Sticky, announced exactly once.
        assert len(degraded_events) == 1
        event = degraded_events[0]
        assert event.from_algorithm == "LOSS"
        assert event.to_algorithm == "SORT"
        assert "wall" in event.reason
        # Batches after the trip run under the fallback algorithm.
        algorithms = [record.algorithm for record in system.batches]
        assert algorithms[0] == "LOSS"
        assert "SORT" in algorithms
        assert system._active_scheduler().name == "SORT"

    def test_blown_execution_budget_trips_degraded(self, tiny):
        bus = EventBus()
        degraded_events = bus.collect("system.degraded")
        system = _system(
            tiny,
            bus=bus,
            resilience=ResilienceConfig(
                execution_budget_seconds=1.0
            ),
        )
        system.run(_requests(tiny))
        assert system.degraded
        assert len(degraded_events) == 1
        assert "simulated" in degraded_events[0].reason

    def test_unbudgeted_system_never_degrades(self, tiny):
        system = _system(tiny, resilience=ResilienceConfig())
        system.run(_requests(tiny))
        assert not system.degraded

    def test_fault_plan_implies_default_resilience(self, tiny):
        system = _system(
            tiny,
            fault_plan=FaultPlan(locate_fault_probability=0.2, seed=1),
        )
        assert system.resilience is not None
        stats = system.run(_requests(tiny))
        assert stats.count + len(system.failed) == len(_requests(tiny))

    def test_zero_rate_fault_plan_adds_no_wrapper(self, tiny):
        from repro.drive import SimulatedDrive

        system = _system(tiny, fault_plan=FaultPlan())
        assert isinstance(system.drive, SimulatedDrive)


class TestBatchAccounting:
    def test_batch_records_carry_faults_and_failures(self, tiny):
        system = _system(
            tiny,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1), max_requeues=0
            ),
            fault_plan=FaultPlan(
                locate_fault_probability=0.45, seed=2
            ),
        )
        system.run(_requests(tiny))
        assert sum(r.failed for r in system.batches) == len(system.failed)
        assert any(r.fault_seconds > 0 for r in system.batches)
        for record in system.batches:
            assert record.phase_seconds == pytest.approx(
                record.execution_seconds
            )

    def test_batch_completed_events_reconcile_under_faults(self, tiny):
        bus = EventBus()
        completed = bus.collect("batch.complete")
        system = _system(
            tiny,
            bus=bus,
            resilience=ResilienceConfig(),
            fault_plan=FaultPlan(
                locate_fault_probability=0.3, seed=4
            ),
        )
        system.run(_requests(tiny))
        assert len(completed) == len(system.batches)
        for event in completed:
            assert (
                event.locate_seconds
                + event.transfer_seconds
                + event.rewind_seconds
                + event.fault_seconds
            ) == pytest.approx(event.total_seconds)


class TestCachedSystemUnderFaults:
    def test_failed_reads_are_not_admitted(self, tiny):
        system = CachedTertiaryStorageSystem(
            geometry=tiny,
            policy=BatchPolicy(max_batch=8),
            cache=SegmentCache(256),
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1), max_requeues=0
            ),
            fault_plan=FaultPlan(
                locate_fault_probability=0.45, seed=2
            ),
        )
        requests = _requests(tiny)
        stats = system.run(requests)
        assert len(system.failed) > 0
        assert stats.count + len(system.failed) == len(requests)
        # A request that never delivered data must not be in the cache:
        # a later identical request would "hit" segments never read.
        completed_segments = set()
        for item in requests:
            if item not in system.failed:
                completed_segments.add(item.segment)
        for item in system.failed:
            if item.segment not in completed_segments:
                assert item.segment not in system.cache

    def test_cached_system_completes_under_faults(self, tiny):
        system = CachedTertiaryStorageSystem(
            geometry=tiny,
            policy=BatchPolicy(max_batch=8),
            cache=SegmentCache(256),
            resilience=ResilienceConfig(max_requeues=5),
            fault_plan=FaultPlan(
                locate_fault_probability=0.3, seed=6
            ),
        )
        requests = _requests(tiny)
        stats = system.run(requests)
        assert stats.count == len(requests)
        assert system.failed == []
