"""Retry and degradation policy objects."""

import math

import pytest

from repro.resilience import ResilienceConfig, RetryPolicy


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 5
        assert math.isinf(policy.request_timeout_seconds)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_seconds": -1.0},
            {"backoff_multiplier": 0.5},
            {"backoff_cap_seconds": -0.1},
            {"jitter_fraction": -0.1},
            {"jitter_fraction": 1.5},
            {"request_timeout_seconds": 0.0},
            {"request_timeout_seconds": -5.0},
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_nan_timeout_raises_and_mentions_inf(self):
        with pytest.raises(ValueError, match="float\\('inf'\\)"):
            RetryPolicy(request_timeout_seconds=float("nan"))


class TestBackoff:
    def test_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            backoff_base_seconds=1.0,
            backoff_multiplier=2.0,
            backoff_cap_seconds=1000.0,
            jitter_fraction=0.0,
        )
        delays = [policy.backoff_seconds(a) for a in (1, 2, 3, 4)]
        assert delays == [1.0, 2.0, 4.0, 8.0]

    def test_cap_bounds_every_delay(self):
        policy = RetryPolicy(
            backoff_base_seconds=10.0,
            backoff_multiplier=3.0,
            backoff_cap_seconds=25.0,
            jitter_fraction=0.0,
        )
        assert policy.backoff_seconds(1) == 10.0
        assert policy.backoff_seconds(2) == 25.0
        assert policy.backoff_seconds(9) == 25.0

    def test_jitter_shrinks_within_fraction(self):
        policy = RetryPolicy(jitter_fraction=0.25)
        for attempt in range(1, 6):
            for segment in (0, 17, 4096):
                raw = RetryPolicy(jitter_fraction=0.0).backoff_seconds(
                    attempt
                )
                jittered = policy.backoff_seconds(attempt, segment)
                assert raw * 0.75 <= jittered <= raw

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(jitter_fraction=0.5, seed=11)
        twin = RetryPolicy(jitter_fraction=0.5, seed=11)
        assert policy.backoff_seconds(3, 42) == twin.backoff_seconds(
            3, 42
        )

    def test_jitter_varies_with_seed_and_segment(self):
        policy = RetryPolicy(jitter_fraction=0.5, seed=1)
        other_seed = RetryPolicy(jitter_fraction=0.5, seed=2)
        assert policy.backoff_seconds(2, 7) != other_seed.backoff_seconds(
            2, 7
        )
        assert policy.backoff_seconds(2, 7) != policy.backoff_seconds(
            2, 8
        )

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(0)

    def test_zero_base_backoff_stays_zero(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.0, jitter_fraction=0.3
        )
        assert policy.backoff_seconds(1) == 0.0


class TestResilienceConfig:
    def test_defaults(self):
        config = ResilienceConfig()
        assert config.max_requeues == 2
        assert config.fallback_algorithm == "SORT"
        assert math.isinf(config.schedule_wall_budget_seconds)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_requeues": -1},
            {"schedule_wall_budget_seconds": -1.0},
            {"execution_budget_seconds": -1.0},
            {"schedule_wall_budget_seconds": float("nan")},
            {"execution_budget_seconds": float("nan")},
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)
