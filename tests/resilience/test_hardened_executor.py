"""The failure-hardened execution path."""

import numpy as np
import pytest

from repro.drive import SimulatedDrive
from repro.obs import EventBus
from repro.resilience import FaultInjector, FaultPlan, RetryPolicy
from repro.scheduling import LossScheduler, SortScheduler, execute_schedule


def _schedule(model, rng, count=12, origin=0):
    batch = rng.choice(
        model.geometry.total_segments, count, replace=False
    ).tolist()
    return SortScheduler().schedule(model, origin, batch)


class TestCleanDriveEquivalence:
    def test_identical_to_plain_path_without_faults(
        self, tiny_model, rng
    ):
        schedule = _schedule(tiny_model, rng)
        plain = execute_schedule(SimulatedDrive(tiny_model), schedule)
        hardened = execute_schedule(
            SimulatedDrive(tiny_model), schedule, policy=RetryPolicy()
        )
        assert hardened.total_seconds == plain.total_seconds
        assert hardened.locate_seconds == plain.locate_seconds
        assert hardened.transfer_seconds == plain.transfer_seconds
        np.testing.assert_array_equal(
            hardened.completion_seconds, plain.completion_seconds
        )
        assert hardened.fault_seconds == 0.0
        assert hardened.success.all()
        assert (hardened.attempts == 1).all()
        assert hardened.all_succeeded
        assert hardened.failed_count == 0
        assert hardened.failed_positions().size == 0

    def test_identical_through_a_zero_rate_injector(
        self, tiny_model, rng
    ):
        schedule = _schedule(tiny_model, rng)
        plain = execute_schedule(SimulatedDrive(tiny_model), schedule)
        injected = execute_schedule(
            FaultInjector(SimulatedDrive(tiny_model), FaultPlan()),
            schedule,
            policy=RetryPolicy(),
        )
        assert injected.total_seconds == plain.total_seconds
        np.testing.assert_array_equal(
            injected.completion_seconds, plain.completion_seconds
        )

    def test_same_events_as_plain_path(self, tiny_model, rng):
        schedule = _schedule(tiny_model, rng, count=6)
        plain_bus, hardened_bus = EventBus(), EventBus()
        plain_events = plain_bus.collect()
        hardened_events = hardened_bus.collect()
        execute_schedule(
            SimulatedDrive(tiny_model), schedule, bus=plain_bus
        )
        execute_schedule(
            SimulatedDrive(tiny_model),
            schedule,
            bus=hardened_bus,
            policy=RetryPolicy(),
        )
        assert hardened_events == plain_events


class TestRetries:
    def _run(self, model, rng, plan_kwargs, policy=None, bus=None,
             count=24):
        schedule = _schedule(model, rng, count=count)
        drive = FaultInjector(
            SimulatedDrive(model), FaultPlan(**plan_kwargs), bus=bus
        )
        result = execute_schedule(
            drive, schedule, bus=bus, policy=policy or RetryPolicy()
        )
        return drive, result

    def test_faults_are_retried_to_completion(self, tiny_model, rng):
        drive, result = self._run(
            tiny_model, rng,
            {"locate_fault_probability": 0.2, "seed": 1},
            policy=RetryPolicy(max_attempts=10),
        )
        assert drive.faults_injected > 0
        assert result.all_succeeded
        assert (result.attempts >= 1).all()
        assert result.attempts.max() > 1
        assert result.fault_seconds > 0

    def test_completion_times_include_penalties_and_backoff(
        self, tiny_model, rng
    ):
        schedule = _schedule(tiny_model, rng, count=24)
        plain = execute_schedule(SimulatedDrive(tiny_model), schedule)
        drive = FaultInjector(
            SimulatedDrive(tiny_model),
            FaultPlan(locate_fault_probability=0.2, seed=1),
        )
        faulted = execute_schedule(
            drive, schedule, policy=RetryPolicy()
        )
        assert faulted.total_seconds > plain.total_seconds
        assert faulted.total_seconds == pytest.approx(
            drive.clock_seconds
        )
        assert faulted.total_seconds == pytest.approx(
            faulted.locate_seconds
            + faulted.transfer_seconds
            + faulted.fault_seconds
        )

    def test_exhaustion_reports_failure_honestly(self, tiny_model, rng):
        _, result = self._run(
            tiny_model, rng,
            {"locate_fault_probability": 0.45, "seed": 2},
            policy=RetryPolicy(max_attempts=1),
        )
        assert not result.all_succeeded
        failed = result.failed_positions()
        assert failed.size == result.failed_count > 0
        assert np.isnan(result.completion_seconds[failed]).all()
        completed = np.flatnonzero(result.success)
        assert np.isfinite(result.completion_seconds[completed]).all()
        assert result.completed_count + result.failed_count == len(
            result.completion_seconds
        )

    def test_retry_and_failure_events_published(self, tiny_model, rng):
        bus = EventBus()
        retried = bus.collect("request.retry")
        failed = bus.collect("request.failed")
        _, result = self._run(
            tiny_model, rng,
            {"locate_fault_probability": 0.4, "seed": 3},
            policy=RetryPolicy(max_attempts=2),
            bus=bus,
        )
        assert len(failed) == result.failed_count > 0
        assert len(retried) > 0
        assert all(e.kind == "locate" for e in retried)
        assert all(e.backoff_seconds >= 0 for e in retried)
        assert all(
            e.reason == "retry budget exhausted" for e in failed
        )
        assert all(e.attempts == 2 for e in failed)

    def test_timeout_gives_up_mid_request(self, tiny_model, rng):
        bus = EventBus()
        failed = bus.collect("request.failed")
        _, result = self._run(
            tiny_model, rng,
            {"locate_fault_probability": 0.45, "seed": 2},
            policy=RetryPolicy(
                max_attempts=100, request_timeout_seconds=1.0
            ),
            bus=bus,
        )
        assert result.failed_count > 0
        assert all(e.reason == "request timeout" for e in failed)

    def test_read_faults_also_retried(self, tiny_model, rng):
        drive, result = self._run(
            tiny_model, rng,
            {"read_fault_probability": 0.3, "seed": 4},
        )
        assert drive.fault_counts["read"] > 0
        assert result.all_succeeded

    def test_reset_relocates_from_bot(self, tiny_model, rng):
        drive, result = self._run(
            tiny_model, rng, {"reset_probability": 0.15, "seed": 5}
        )
        assert drive.fault_counts["reset"] > 0
        assert result.all_succeeded

    def test_deterministic_under_faults(self, tiny_model, rng):
        schedule = _schedule(tiny_model, np.random.default_rng(77))

        def run():
            drive = FaultInjector(
                SimulatedDrive(tiny_model),
                FaultPlan(locate_fault_probability=0.25, seed=6),
            )
            result = execute_schedule(
                drive, schedule, policy=RetryPolicy(seed=6)
            )
            return (
                result.total_seconds,
                result.completion_seconds.tolist(),
                result.attempts.tolist(),
            )

        assert run() == run()

    def test_policy_ignored_for_whole_tape_plans(self, tiny_model, rng):
        from repro.scheduling import ReadEntireTapeScheduler

        batch = rng.choice(
            tiny_model.geometry.total_segments, 6, replace=False
        ).tolist()
        schedule = ReadEntireTapeScheduler().schedule(
            tiny_model, 0, batch
        )
        plain = execute_schedule(SimulatedDrive(tiny_model), schedule)
        with_policy = execute_schedule(
            SimulatedDrive(tiny_model), schedule, policy=RetryPolicy()
        )
        assert with_policy.success is None
        assert with_policy.total_seconds == plain.total_seconds


class TestGoldenPathUnchanged:
    def test_loss_schedule_times_match_plain_executor(
        self, full_model, rng
    ):
        batch = rng.choice(
            full_model.geometry.total_segments, 48, replace=False
        ).tolist()
        schedule = LossScheduler().schedule(full_model, 0, batch)
        plain = execute_schedule(SimulatedDrive(full_model), schedule)
        hardened = execute_schedule(
            SimulatedDrive(full_model), schedule, policy=RetryPolicy()
        )
        assert hardened.total_seconds == plain.total_seconds
        np.testing.assert_array_equal(
            hardened.completion_seconds, plain.completion_seconds
        )
