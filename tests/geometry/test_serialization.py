"""Geometry persistence."""

import json

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry import (
    geometry_from_dict,
    geometry_to_dict,
    load_geometry,
    save_geometry,
    tiny_tape,
)
from repro.model import LocateTimeModel


class TestRoundTrip:
    def test_dict_round_trip(self, tiny):
        rebuilt = geometry_from_dict(geometry_to_dict(tiny))
        assert rebuilt.label == tiny.label
        assert rebuilt.total_segments == tiny.total_segments
        assert np.array_equal(
            rebuilt.all_key_points(), tiny.all_key_points()
        )

    def test_file_round_trip(self, tiny, tmp_path):
        path = tmp_path / "cartridge.json"
        save_geometry(tiny, path)
        rebuilt = load_geometry(path)
        assert np.array_equal(
            rebuilt.all_key_points(), tiny.all_key_points()
        )

    def test_locate_times_survive(self, tiny, tmp_path, rng):
        path = tmp_path / "cartridge.json"
        save_geometry(tiny, path)
        rebuilt = load_geometry(path)
        destinations = rng.integers(0, tiny.total_segments, 200)
        original = LocateTimeModel(tiny).locate_times(0, destinations)
        recovered = LocateTimeModel(rebuilt).locate_times(0, destinations)
        np.testing.assert_allclose(recovered, original)

    def test_payload_is_json(self, tiny):
        text = json.dumps(geometry_to_dict(tiny))
        assert "repro-tape-geometry" in text


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(GeometryError):
            geometry_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, tiny):
        payload = geometry_to_dict(tiny)
        payload["version"] = 99
        with pytest.raises(GeometryError):
            geometry_from_dict(payload)

    def test_inconsistent_total_rejected(self, tiny):
        payload = geometry_to_dict(tiny)
        payload["total_segments"] += 1
        with pytest.raises(GeometryError):
            geometry_from_dict(payload)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(GeometryError):
            load_geometry(path)

    def test_distinct_tapes_serialize_differently(self):
        a = geometry_to_dict(tiny_tape(seed=1))
        b = geometry_to_dict(tiny_tape(seed=2))
        assert a != b
