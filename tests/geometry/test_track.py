"""TrackLayout invariants and key-point derivations."""

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.track import TrackLayout


def make_track(track=0, first=0, sizes=None):
    sizes = np.asarray(sizes if sizes is not None else [10] * 13 + [6])
    bounds = np.concatenate(([0.0], np.cumsum(sizes, dtype=float)))
    bounds *= 14.0 / bounds[-1]
    return TrackLayout(
        track=track,
        first_segment=first,
        section_sizes=sizes,
        phys_boundaries=bounds,
    )


class TestValidation:
    def test_wrong_section_count_rejected(self):
        with pytest.raises(GeometryError):
            TrackLayout(0, 0, np.asarray([10] * 5), np.linspace(0, 14, 6))

    def test_empty_section_rejected(self):
        sizes = [10] * 13 + [0]
        with pytest.raises(GeometryError):
            make_track(sizes=sizes)

    def test_nonincreasing_boundaries_rejected(self):
        sizes = np.asarray([10] * 14)
        bounds = np.linspace(0, 14, 15)
        bounds[5] = bounds[4]
        with pytest.raises(GeometryError):
            TrackLayout(0, 0, sizes, bounds)

    def test_boundary_count_rejected(self):
        with pytest.raises(GeometryError):
            TrackLayout(
                0, 0, np.asarray([10] * 14), np.linspace(0, 14, 14)
            )


class TestDerived:
    def test_size_and_last_segment(self):
        track = make_track(first=100)
        assert track.size == 13 * 10 + 6
        assert track.last_segment == 100 + track.size - 1

    def test_forward_section_first_segment(self):
        track = make_track(track=0, first=0)
        layout = track.section_layout(3)
        assert layout.first_segment == 30
        assert layout.size == 10
        assert 30 in layout and 39 in layout and 40 not in layout

    def test_reverse_section_first_segment(self):
        # Reverse track: physical section 13 is written first, so its
        # lowest segment number is the track's first segment.
        track = make_track(track=1, first=200)
        last_section = track.section_layout(13)
        assert last_section.first_segment == 200
        # Physical section 0 is written last.
        first_section = track.section_layout(0)
        assert first_section.last_segment == track.last_segment

    def test_forward_key_points_are_section_starts(self):
        track = make_track(track=0, first=50)
        kp = track.key_point_segments()
        assert kp.shape == (14,)
        assert kp[0] == 50
        assert kp[1] == 60
        assert kp[13] == 50 + 130

    def test_reverse_key_points_follow_segment_order(self):
        sizes = [10] * 13 + [6]
        track = make_track(track=1, first=0, sizes=sizes)
        kp = track.key_point_segments()
        assert kp[0] == 0
        # First dip: after consuming physical section 13 (6 segments).
        assert kp[1] == 6
        assert kp[2] == 16

    def test_key_point_phys_direction(self):
        forward = make_track(track=0)
        reverse = make_track(track=1)
        assert np.all(np.diff(forward.key_point_phys()) > 0)
        assert np.all(np.diff(reverse.key_point_phys()) < 0)
        assert forward.key_point_phys()[0] == 0.0
        assert reverse.key_point_phys()[0] == 14.0
