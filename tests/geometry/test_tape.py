"""TapeGeometry: mappings, key points, and validation."""

import numpy as np
import pytest

from repro.exceptions import GeometryError, SegmentOutOfRange
from repro.geometry import TapeGeometry, TrackDirection, tiny_tape
from repro.geometry.track import TrackLayout


class TestConstruction:
    def test_needs_tracks(self):
        with pytest.raises(GeometryError):
            TapeGeometry([])

    def test_rejects_gap_in_segments(self, tiny):
        layouts = list(tiny.tracks)
        bad = TrackLayout(
            track=1,
            first_segment=layouts[1].first_segment + 5,
            section_sizes=layouts[1].section_sizes,
            phys_boundaries=layouts[1].phys_boundaries,
        )
        layouts[1] = bad
        with pytest.raises(GeometryError):
            TapeGeometry(layouts)

    def test_rejects_out_of_order_tracks(self, tiny):
        layouts = list(tiny.tracks)
        layouts[0], layouts[1] = layouts[1], layouts[0]
        with pytest.raises(GeometryError):
            TapeGeometry(layouts)


class TestRoundTrip:
    def test_every_segment_round_trips(self, tiny):
        for segment in range(tiny.total_segments):
            coord = tiny.coordinate_of(segment)
            back = tiny.segment_at(coord.track, coord.section, coord.offset)
            assert back == segment

    def test_section_ranges_are_contiguous(self, tiny):
        for layout in tiny.iter_sections():
            segments = np.arange(
                layout.first_segment, layout.last_segment + 1
            )
            tracks = tiny.track_of(segments)
            assert (tracks == layout.track).all()
            sections = np.asarray(tiny.section_of(segments))
            assert (sections == layout.section).all()

    def test_segment_at_validates(self, tiny):
        with pytest.raises(GeometryError):
            tiny.segment_at(tiny.num_tracks, 0, 0)
        with pytest.raises(GeometryError):
            tiny.segment_at(0, 14, 0)
        with pytest.raises(GeometryError):
            tiny.segment_at(0, 0, 10_000)


class TestPhysicalPositions:
    def test_bounds(self, tiny):
        phys = tiny.phys_of(np.arange(tiny.total_segments))
        assert float(phys.min()) >= 0.0
        assert float(phys.max()) <= 14.0

    def test_forward_tracks_increase(self, tiny):
        layout = tiny.track_layout(0)
        segments = np.arange(layout.first_segment, layout.last_segment + 1)
        assert np.all(np.diff(tiny.phys_of(segments)) > 0)

    def test_reverse_tracks_decrease(self, tiny):
        layout = tiny.track_layout(1)
        segments = np.arange(layout.first_segment, layout.last_segment + 1)
        assert np.all(np.diff(tiny.phys_of(segments)) < 0)

    def test_serpentine_adjacency(self, tiny):
        # The last segment of track 0 and the first of track 1 sit at
        # nearly the same physical position (head reversal point).
        end_of_0 = tiny.track_layout(0).last_segment
        start_of_1 = tiny.track_layout(1).first_segment
        gap = abs(
            float(tiny.phys_of(end_of_0)) - float(tiny.phys_of(start_of_1))
        )
        assert gap < 0.5


class TestSectionIndexes:
    def test_ordinal_vs_physical(self, tiny):
        segments = np.arange(tiny.total_segments)
        soi = tiny.ordinal_section_of(segments)
        section = np.asarray(tiny.section_of(segments))
        direction = tiny.direction_of(segments)
        forward = direction > 0
        assert (soi[forward] == section[forward]).all()
        assert (soi[~forward] == 13 - section[~forward]).all()

    def test_global_section_distinct_per_section(self, tiny):
        ids = set()
        for layout in tiny.iter_sections():
            gid = int(tiny.global_section_of(layout.first_segment))
            assert gid not in ids
            ids.add(gid)
        assert len(ids) == tiny.num_tracks * 14


class TestKeyPoints:
    def test_key_point_shape_and_start(self, tiny):
        kp = tiny.all_key_points()
        assert kp.shape == (tiny.num_tracks, 14)
        assert kp[0, 0] == 0
        # Key points increase in segment order within every track.
        assert (np.diff(kp, axis=1) > 0).all()

    def test_scan_target_is_key_point_two_before(self, tiny):
        # For a destination in ordinal section i >= 2 the scan target is
        # the physical position of key point i - 1.
        for track in range(tiny.num_tracks):
            kp_segments = tiny.key_points(track)
            kp_phys = tiny.key_point_phys(track)
            for soi in range(2, 14):
                destination = int(kp_segments[soi])
                assert float(
                    tiny.scan_target_phys(destination)
                ) == pytest.approx(float(kp_phys[soi - 1]))

    def test_scan_target_first_sections_is_track_start(self, tiny):
        for track in (0, 1):
            kp_segments = tiny.key_points(track)
            start_phys = float(tiny.key_point_phys(track)[0])
            for soi in (0, 1):
                destination = int(kp_segments[soi])
                assert float(
                    tiny.scan_target_phys(destination)
                ) == pytest.approx(start_phys)


class TestValidationHelpers:
    def test_check_segment(self, tiny):
        tiny.check_segment(0)
        tiny.check_segment(tiny.total_segments - 1)
        with pytest.raises(SegmentOutOfRange):
            tiny.check_segment(-1)
        with pytest.raises(SegmentOutOfRange):
            tiny.check_segment(tiny.total_segments)

    def test_check_segments_array(self, tiny):
        tiny.check_segments(np.asarray([0, 1, 2]))
        tiny.check_segments(np.asarray([], dtype=np.int64))
        with pytest.raises(SegmentOutOfRange) as info:
            tiny.check_segments(np.asarray([1, tiny.total_segments, 2]))
        assert info.value.segment == tiny.total_segments

    def test_direction_of(self, tiny):
        assert int(tiny.direction_of(0)) == int(TrackDirection.FORWARD)
        start_of_1 = tiny.track_layout(1).first_segment
        assert int(tiny.direction_of(start_of_1)) == int(
            TrackDirection.REVERSE
        )


class TestTinyFactory:
    def test_structure(self):
        tape = tiny_tape(seed=0, tracks=6)
        assert tape.num_tracks == 6
        assert tape.total_segments == 6 * (13 * 12 + 8)
