"""Key-point calibration against the locate-time oracle."""

import numpy as np
import pytest

from repro.geometry import tiny_tape
from repro.geometry.calibration import (
    CalibrationError,
    calibrate_key_points,
    detect_drops,
    geometry_from_key_points,
    noisy_oracle,
    sweep_locate_curve,
)
from repro.model import LocateTimeModel


@pytest.fixture(scope="module")
def tape():
    return tiny_tape(seed=7, tracks=6)


@pytest.fixture(scope="module")
def model(tape):
    return LocateTimeModel(tape)


class TestDetectDrops:
    def test_finds_synthetic_drop(self):
        curve = np.asarray([1.0, 2.0, 3.0, 0.2, 1.2])
        assert detect_drops(curve, threshold=2.5).tolist() == [3]

    def test_threshold_respected(self):
        curve = np.asarray([5.0, 3.0, 1.0])
        assert detect_drops(curve, threshold=2.5).size == 0
        assert detect_drops(curve, threshold=1.5).tolist() == [1, 2]

    def test_sweep_shape(self, model, tape):
        curve = sweep_locate_curve(
            model.oracle(), 0, tape.total_segments
        )
        assert curve.shape == (tape.total_segments,)
        assert float(curve[0]) == 0.0


class TestCalibration:
    def test_observable_key_points_exact(self, model, tape):
        result = calibrate_key_points(
            model.oracle(), tape.total_segments, tape.num_tracks
        )
        assert result.key_points.shape == (tape.num_tracks, 14)
        assert result.max_observable_error(tape.all_key_points()) == 0

    def test_rebuilt_model_matches_within_interpolation_bound(
        self, model, tape
    ):
        # Only the interpolated first-dip boundary may perturb locate
        # times (it is the scan target of ordinal section 2); the
        # perturbation is bounded by the interpolation error times the
        # track's physical density times the scan+read rates.
        result = calibrate_key_points(
            model.oracle(), tape.total_segments, tape.num_tracks
        )
        rebuilt = geometry_from_key_points(
            result.key_points, tape.total_segments
        )
        rebuilt_model = LocateTimeModel(rebuilt)
        rng = np.random.default_rng(0)
        destinations = rng.integers(0, tape.total_segments, 500)
        original = model.locate_times(0, destinations)
        recovered = rebuilt_model.locate_times(0, destinations)

        kp_error = result.max_error(tape.all_key_points())
        min_track = min(layout.size for layout in tape.tracks)
        bound = (kp_error + 1) * (14.0 / min_track) * 26.0
        np.testing.assert_allclose(recovered, original, atol=bound)

    def test_full_size_rebuild_is_subsecond(self, full_tape, full_model):
        # On a real-size cartridge the interpolation error is a handful
        # of segments against ~704-segment sections: locate times from
        # the rebuilt geometry agree to well under a second.
        result = calibrate_key_points(
            full_model.oracle(),
            full_tape.total_segments,
            full_tape.num_tracks,
        )
        assert result.max_observable_error(full_tape.all_key_points()) == 0
        rebuilt = geometry_from_key_points(
            result.key_points, full_tape.total_segments
        )
        rebuilt_model = LocateTimeModel(rebuilt)
        rng = np.random.default_rng(0)
        destinations = rng.integers(0, full_tape.total_segments, 2000)
        original = full_model.locate_times(0, destinations)
        recovered = rebuilt_model.locate_times(0, destinations)
        assert float(np.abs(recovered - original).max()) < 1.0

    def test_probe_count_reported(self, model, tape):
        result = calibrate_key_points(
            model.oracle(), tape.total_segments, tape.num_tracks
        )
        assert result.probes == 2 * tape.total_segments

    def test_mild_noise_survives(self, model, tape):
        oracle = noisy_oracle(model.oracle(), sigma=0.3, seed=1)
        result = calibrate_key_points(
            oracle, tape.total_segments, tape.num_tracks
        )
        assert result.max_observable_error(tape.all_key_points()) <= 2

    def test_heavy_noise_raises(self, model, tape):
        oracle = noisy_oracle(model.oracle(), sigma=8.0, seed=1)
        with pytest.raises(CalibrationError):
            calibrate_key_points(
                oracle, tape.total_segments, tape.num_tracks
            )


class TestGeometryFromKeyPoints:
    def test_round_trip_section_sizes(self, tape):
        rebuilt = geometry_from_key_points(
            tape.all_key_points(), tape.total_segments
        )
        for original, recovered in zip(tape.tracks, rebuilt.tracks):
            assert np.array_equal(
                original.section_sizes, recovered.section_sizes
            )

    def test_rejects_bad_shape(self, tape):
        with pytest.raises(Exception):
            geometry_from_key_points(
                tape.all_key_points()[:, :5], tape.total_segments
            )

    def test_rejects_non_increasing(self, tape):
        points = tape.all_key_points()
        points[0, 3] = points[0, 2]
        with pytest.raises(Exception):
            geometry_from_key_points(points, tape.total_segments)
