"""Coordinate conventions: directions and section index mappings."""

import pytest

from repro.geometry.coordinates import (
    SegmentCoordinate,
    TrackDirection,
    ordinal_section,
    physical_section,
)


class TestTrackDirection:
    def test_even_tracks_are_forward(self):
        assert TrackDirection.of_track(0) is TrackDirection.FORWARD
        assert TrackDirection.of_track(62) is TrackDirection.FORWARD

    def test_odd_tracks_are_reverse(self):
        assert TrackDirection.of_track(1) is TrackDirection.REVERSE
        assert TrackDirection.of_track(63) is TrackDirection.REVERSE

    def test_value_is_physical_sign(self):
        assert int(TrackDirection.FORWARD) == 1
        assert int(TrackDirection.REVERSE) == -1


class TestOrdinalSection:
    def test_forward_track_identity(self):
        for section in range(14):
            assert ordinal_section(0, section) == section

    def test_reverse_track_flips(self):
        assert ordinal_section(1, 13) == 0
        assert ordinal_section(1, 0) == 13
        assert ordinal_section(1, 6) == 7

    def test_physical_section_is_inverse(self):
        for track in (0, 1, 2, 63):
            for section in range(14):
                soi = ordinal_section(track, section)
                assert physical_section(track, soi) == section

    def test_reverse_first_written_section_is_13(self):
        # Paper: the first segment written on a reverse track t' is
        # (t', 13, k) -- ordinal section 0 is physical section 13.
        assert physical_section(1, 0) == 13


class TestSegmentCoordinate:
    def test_properties(self):
        coord = SegmentCoordinate(track=3, section=13, offset=600)
        assert coord.direction is TrackDirection.REVERSE
        assert coord.ordinal_section == 0
        assert coord.as_tuple() == (3, 13, 600)

    def test_codirectional(self):
        forward_a = SegmentCoordinate(0, 2, 5)
        forward_b = SegmentCoordinate(2, 9, 1)
        reverse = SegmentCoordinate(1, 2, 5)
        assert forward_a.is_codirectional(forward_b)
        assert not forward_a.is_codirectional(reverse)

    def test_frozen(self):
        coord = SegmentCoordinate(0, 0, 0)
        with pytest.raises(AttributeError):
            coord.track = 1
