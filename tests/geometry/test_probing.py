"""The adaptive probing calibrator."""

import numpy as np
import pytest

from repro.geometry import tiny_tape
from repro.geometry.calibration import (
    CalibrationError,
    calibrate_key_points,
    noisy_oracle,
)
from repro.geometry.probing import probing_calibrate
from repro.model import LocateTimeModel


@pytest.fixture(scope="module")
def tape():
    return tiny_tape(seed=13, tracks=6, section_segments=20)


@pytest.fixture(scope="module")
def model(tape):
    return LocateTimeModel(tape)


class TestProbingCalibration:
    def test_matches_dense_calibration(self, tape, model):
        dense = calibrate_key_points(
            model.oracle(), tape.total_segments, tape.num_tracks
        )
        sparse = probing_calibrate(
            model.oracle(), tape.total_segments, tape.num_tracks
        )
        assert np.array_equal(sparse.key_points, dense.key_points)

    def test_observable_recovery_is_exact(self, tape, model):
        result = probing_calibrate(
            model.oracle(), tape.total_segments, tape.num_tracks
        )
        assert result.max_observable_error(tape.all_key_points()) == 0

    def test_orders_of_magnitude_fewer_probes(self, tape, model):
        dense = calibrate_key_points(
            model.oracle(), tape.total_segments, tape.num_tracks
        )
        sparse = probing_calibrate(
            model.oracle(), tape.total_segments, tape.num_tracks
        )
        assert sparse.probes < dense.probes / 2
        # Roughly log(section size) probes per key point, not one per
        # segment.
        assert sparse.probes < 40 * tape.num_tracks * 14

    def test_full_size_tape(self, full_tape, full_model):
        result = probing_calibrate(
            full_model.oracle(),
            full_tape.total_segments,
            full_tape.num_tracks,
        )
        assert result.max_observable_error(full_tape.all_key_points()) == 0
        assert result.probes < 60_000

    def test_heavy_noise_raises(self, tape, model):
        oracle = noisy_oracle(model.oracle(), sigma=8.0, seed=2)
        with pytest.raises(CalibrationError):
            probing_calibrate(
                oracle, tape.total_segments, tape.num_tracks
            )
