"""Synthetic tape generation: determinism, totals, divergence."""

import numpy as np
import pytest

from repro.constants import DEFAULT_TOTAL_SEGMENTS
from repro.exceptions import GeometryError
from repro.geometry import generate_tape, make_tape_pair, tiny_tape


class TestGenerateTape:
    def test_exact_total(self):
        tape = generate_tape(seed=9)
        assert tape.total_segments == DEFAULT_TOTAL_SEGMENTS

    def test_custom_total(self):
        tape = generate_tape(seed=9, total_segments=500_000)
        assert tape.total_segments == 500_000

    def test_deterministic(self):
        a = generate_tape(seed=5)
        b = generate_tape(seed=5)
        assert np.array_equal(a.all_key_points(), b.all_key_points())

    def test_seeds_differ(self):
        a = generate_tape(seed=5)
        b = generate_tape(seed=6)
        assert not np.array_equal(a.all_key_points(), b.all_key_points())

    def test_odd_track_count_rejected(self):
        with pytest.raises(GeometryError):
            generate_tape(tracks=7)

    def test_tiny_track_count_rejected(self):
        with pytest.raises(GeometryError):
            generate_tape(tracks=0)

    def test_last_section_is_short(self):
        tape = generate_tape(seed=2)
        sizes = np.stack(
            [layout.section_sizes for layout in tape.tracks]
        )
        # Paper: ~704 per section, section 13 significantly shorter
        # (~600).
        assert abs(float(sizes[:, :13].mean()) - 704) < 30
        assert float(sizes[:, 13].mean()) < float(sizes[:, :13].mean()) - 50

    def test_track_lengths_differ(self):
        tape = generate_tape(seed=2)
        lengths = {layout.size for layout in tape.tracks}
        assert len(lengths) > 1


class TestTinyTape:
    def test_deterministic(self):
        a = tiny_tape(seed=1)
        b = tiny_tape(seed=1)
        assert np.array_equal(a.all_key_points(), b.all_key_points())

    def test_label(self):
        assert tiny_tape(seed=4).label == "tiny-4"


class TestTapePair:
    def test_labels_and_divergence(self):
        tape_a, tape_b = make_tape_pair(seed=0)
        assert tape_a.label.startswith("tape-A")
        assert tape_b.label.startswith("tape-B")
        divergence = np.abs(
            tape_a.all_key_points() - tape_b.all_key_points()
        )
        # The pair must diverge enough for Figure 9's "disastrous"
        # wrong-key-point errors: hundreds of segments at least.
        assert divergence.max() > 500

    def test_same_total(self):
        tape_a, tape_b = make_tape_pair(seed=1)
        assert tape_a.total_segments == tape_b.total_segments
