"""Derived per-trial seed streams (the parallel engine's foundation)."""

import pytest

from repro.workload import splitmix64, trial_state, trial_workload
from repro.workload.lrand48 import LRand48
from repro.workload.seed_stream import _namespace_tag


class TestSplitmix64:
    def test_known_values(self):
        # Reference outputs of the standard SplitMix64 generator
        # (Steele, Lea & Flood) seeded with 0: splitmix64(k * gamma)
        # is the (k+1)-th output.
        from repro.workload.seed_stream import _GOLDEN_GAMMA

        assert splitmix64(0) == 0xE220A8397B1DCDAF
        assert splitmix64(_GOLDEN_GAMMA) == 0x6E789E6AA1B965F4

    def test_bijection_has_no_small_collisions(self):
        outputs = {splitmix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000

    def test_wraps_to_64_bits(self):
        assert 0 <= splitmix64(2**64 - 1) < 2**64
        assert splitmix64(2**64) == splitmix64(0)


class TestTrialState:
    def test_deterministic(self):
        assert trial_state(0, 8, 17) == trial_state(0, 8, 17)

    def test_fits_lrand48_state(self):
        for trial in range(100):
            state = trial_state(0, 16, trial)
            assert 0 <= state < 2**48

    @pytest.mark.parametrize(
        "other",
        [
            dict(workload_seed=1),
            dict(length=4),
            dict(trial=1),
            dict(namespace="validation"),
        ],
    )
    def test_every_component_matters(self, other):
        base = dict(workload_seed=0, length=8, trial=0,
                    namespace="per-locate")
        assert trial_state(**base) != trial_state(**{**base, **other})

    def test_no_collisions_across_a_sweep(self):
        # A full quick-scale sweep's worth of (length, trial) cells must
        # map to distinct states — a collision would correlate trials.
        states = {
            trial_state(0, length, trial)
            for length in (1, 2, 4, 8, 16, 32, 64, 96)
            for trial in range(2_000)
        }
        assert len(states) == 8 * 2_000

    def test_namespaces_partition_experiments(self):
        per_locate = {trial_state(0, 8, t) for t in range(500)}
        validation = {
            trial_state(0, 8, t, namespace="validation")
            for t in range(500)
        }
        assert per_locate.isdisjoint(validation)

    def test_namespace_tag_is_fnv1a(self):
        # FNV-1a of the empty string is the offset basis.
        assert _namespace_tag("") == 0xCBF29CE484222325


class TestTrialWorkload:
    def test_positions_generator_at_state(self):
        workload = trial_workload(1000, 0, 8, 3)
        reference = LRand48(0)
        reference.set_state(trial_state(0, 8, 3))
        # The workload's draws come from the derived state, not from
        # srand48(workload_seed).
        batch = workload.sample_batch(4)
        assert len(batch) == 4

    def test_same_trial_same_batch(self):
        first = trial_workload(10_000, 0, 8, 5).sample_batch(8)
        second = trial_workload(10_000, 0, 8, 5).sample_batch(8)
        assert list(first) == list(second)

    def test_different_trials_differ(self):
        first = trial_workload(10_000, 0, 8, 5).sample_batch(8)
        second = trial_workload(10_000, 0, 8, 6).sample_batch(8)
        assert list(first) != list(second)

    def test_order_independent(self):
        # Trial 7 yields the same batch whether or not trials 0..6 were
        # ever generated — the property serial lrand48 lacked.
        late = trial_workload(10_000, 0, 4, 7).sample_batch(4)
        for trial in range(7):
            trial_workload(10_000, 0, 4, trial).sample_batch(4)
        again = trial_workload(10_000, 0, 4, 7).sample_batch(4)
        assert list(late) == list(again)


class TestLRand48State:
    def test_get_set_round_trip(self):
        gen = LRand48(42)
        gen.lrand48()
        state = gen.get_state()
        first = [gen.lrand48() for _ in range(5)]
        gen.set_state(state)
        second = [gen.lrand48() for _ in range(5)]
        assert first == second

    def test_set_state_masks_to_48_bits(self):
        gen = LRand48(0)
        gen.set_state(2**48 + 7)
        assert gen.get_state() == 7

    def test_full_state_space_beyond_srand48(self):
        # srand48 can only reach states of the form (seed << 16) | 0x330E;
        # set_state reaches arbitrary 48-bit states.
        gen = LRand48(0)
        gen.set_state(0x123456789ABC)
        assert gen.get_state() == 0x123456789ABC
