"""Poisson arrival process."""

import pytest

from repro.workload import PoissonArrivals


class TestPoisson:
    def test_arrivals_monotone_and_bounded(self):
        stream = PoissonArrivals(
            rate_per_hour=100.0, total_segments=1000, seed=1
        ).batch(3600.0)
        times = [r.arrival_seconds for r in stream]
        assert times == sorted(times)
        assert all(0 < t < 3600.0 for t in times)

    def test_rate_approximately_respected(self):
        stream = PoissonArrivals(
            rate_per_hour=200.0, total_segments=1000, seed=2
        ).batch(100 * 3600.0)
        rate = len(stream) / 100.0
        assert rate == pytest.approx(200.0, rel=0.1)

    def test_segments_in_range(self):
        stream = PoissonArrivals(
            rate_per_hour=50.0, total_segments=77, seed=3
        ).batch(24 * 3600.0)
        assert all(0 <= r.segment < 77 for r in stream)

    def test_deterministic(self):
        a = PoissonArrivals(50.0, 1000, seed=4).batch(3600.0)
        b = PoissonArrivals(50.0, 1000, seed=4).batch(3600.0)
        assert [(r.arrival_seconds, r.segment) for r in a] == [
            (r.arrival_seconds, r.segment) for r in b
        ]

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_per_hour=0.0)

    def test_streaming_matches_batch(self):
        gen = PoissonArrivals(80.0, 500, seed=5)
        first = list(gen.stream(1800.0))
        gen2 = PoissonArrivals(80.0, 500, seed=5)
        assert first == gen2.batch(1800.0)


def test_timed_request_is_frozen():
    from repro.workload import TimedRequest

    request = TimedRequest(1.0, 5)
    assert request.length == 1
    with pytest.raises(AttributeError):
        request.segment = 9
