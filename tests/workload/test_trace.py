"""Trace recording and replay."""

import pytest

from repro.workload import (
    PoissonArrivals,
    TimedRequest,
    load_trace,
    save_trace,
    trace_from_batch,
)


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        original = [
            TimedRequest(0.0, 10),
            TimedRequest(2.5, 99, length=4),
            TimedRequest(7.0, 3),
        ]
        path = save_trace(original, tmp_path / "trace.jsonl")
        assert load_trace(path) == original

    def test_poisson_stream_round_trips(self, tmp_path):
        stream = PoissonArrivals(100.0, 5000, seed=2).batch(3600.0)
        path = save_trace(stream, tmp_path / "poisson.jsonl")
        assert load_trace(path) == stream

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"t": 0.0, "segment": 5}\n\n{"t": 1.0, "segment": 6}\n'
        )
        assert len(load_trace(path)) == 2

    def test_default_length(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t": 0.0, "segment": 5}\n')
        assert load_trace(path)[0].length == 1


class TestValidation:
    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="malformed"):
            load_trace(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1.0}\n')
        with pytest.raises(ValueError, match="malformed"):
            load_trace(path)

    def test_time_travel(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"t": 5.0, "segment": 1}\n{"t": 1.0, "segment": 2}\n'
        )
        with pytest.raises(ValueError, match="non-decreasing"):
            load_trace(path)

    def test_negative_time(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": -1.0, "segment": 1}\n')
        with pytest.raises(ValueError, match="negative"):
            load_trace(path)

    def test_bad_length(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 0.0, "segment": 1, "length": 0}\n')
        with pytest.raises(ValueError):
            load_trace(path)


class TestBatchConversion:
    def test_wraps_batch(self):
        trace = trace_from_batch([5, 9, 2], arrival_seconds=3.0)
        assert [r.segment for r in trace] == [5, 9, 2]
        assert all(r.arrival_seconds == 3.0 for r in trace)

    def test_replay_through_online_system(self, tmp_path):
        from repro.geometry import tiny_tape
        from repro.online import TertiaryStorageSystem

        trace = trace_from_batch([5, 60, 120])
        path = save_trace(trace, tmp_path / "batch.jsonl")
        system = TertiaryStorageSystem(geometry=tiny_tape(seed=2))
        stats = system.run(load_trace(path))
        assert stats.count == 3
