"""Uniform batch workload."""

import numpy as np
import pytest

from repro.workload import UniformWorkload


class TestBatches:
    def test_distinct_and_in_range(self):
        workload = UniformWorkload(total_segments=1000, seed=0)
        batch = workload.sample_batch(200)
        assert len(set(batch.tolist())) == 200
        assert batch.min() >= 0
        assert batch.max() < 1000

    def test_deterministic(self):
        a = UniformWorkload(total_segments=5000, seed=9).sample_batch(50)
        b = UniformWorkload(total_segments=5000, seed=9).sample_batch(50)
        np.testing.assert_array_equal(a, b)

    def test_over_draw_rejected(self):
        workload = UniformWorkload(total_segments=10, seed=0)
        with pytest.raises(ValueError):
            workload.sample_batch(11)

    def test_successive_batches_differ(self):
        workload = UniformWorkload(total_segments=5000, seed=1)
        a = workload.sample_batch(20)
        b = workload.sample_batch(20)
        assert not np.array_equal(a, b)


class TestOriginModes:
    def test_random_origin_comes_from_first_draw(self):
        fresh = UniformWorkload(total_segments=5000, seed=4)
        draws = fresh.sample_batch(6)
        again = UniformWorkload(total_segments=5000, seed=4)
        origin, batch = again.sample_batch_with_origin(
            5, origin_at_start=False
        )
        assert origin == draws[0]
        np.testing.assert_array_equal(batch, draws[1:])

    def test_bot_origin_is_zero(self):
        workload = UniformWorkload(total_segments=5000, seed=4)
        origin, batch = workload.sample_batch_with_origin(
            5, origin_at_start=True
        )
        assert origin == 0
        assert batch.shape == (5,)

    def test_bot_mode_consumes_same_draws(self):
        # Both modes draw 1 + N values, so seeded series stay aligned
        # (the paper's Figures 4 and 5 use the same batches).
        random_mode = UniformWorkload(total_segments=5000, seed=8)
        bot_mode = UniformWorkload(total_segments=5000, seed=8)
        _, batch_a = random_mode.sample_batch_with_origin(5, False)
        _, batch_b = bot_mode.sample_batch_with_origin(5, True)
        np.testing.assert_array_equal(batch_a, batch_b)

    def test_single_segment(self):
        workload = UniformWorkload(total_segments=100, seed=0)
        assert 0 <= workload.sample_segment() < 100
