"""The POSIX rand48 reimplementation."""

import pytest

from repro.workload import LRand48

# Constants of the POSIX generator, restated independently here so the
# test cross-checks the implementation against the spec rather than
# against itself.
A = 0x5DEECE66D
C = 0xB
MASK = (1 << 48) - 1


def reference_states(seed, count):
    state = ((seed & 0xFFFFFFFF) << 16) | 0x330E
    out = []
    for _ in range(count):
        state = (A * state + C) & MASK
        out.append(state)
    return out


class TestSpecCompliance:
    def test_lrand48_is_high_31_bits(self):
        gen = LRand48(12345)
        expected = [s >> 17 for s in reference_states(12345, 10)]
        assert [gen.lrand48() for _ in range(10)] == expected

    def test_mrand48_is_signed_high_32_bits(self):
        gen = LRand48(7)
        for state in reference_states(7, 10):
            value = gen.mrand48()
            raw = state >> 16
            expected = raw - (1 << 32) if raw >= (1 << 31) else raw
            assert value == expected

    def test_drand48_range_and_value(self):
        gen = LRand48(99)
        for state in reference_states(99, 10):
            value = gen.drand48()
            assert value == pytest.approx(state / float(1 << 48))
            assert 0.0 <= value < 1.0


class TestBehaviour:
    def test_reseed_reproduces(self):
        gen = LRand48(5)
        first = [gen.lrand48() for _ in range(5)]
        gen.srand48(5)
        assert [gen.lrand48() for _ in range(5)] == first

    def test_seeds_differ(self):
        a = [LRand48(1).lrand48() for _ in range(1)]
        b = [LRand48(2).lrand48() for _ in range(1)]
        assert a != b

    def test_range(self):
        gen = LRand48(0)
        for _ in range(1000):
            value = gen.lrand48()
            assert 0 <= value < (1 << 31)

    def test_below(self):
        gen = LRand48(3)
        for _ in range(1000):
            assert 0 <= gen.below(622_058) < 622_058

    def test_below_validates(self):
        with pytest.raises(ValueError):
            LRand48(0).below(0)

    def test_roughly_uniform(self):
        gen = LRand48(42)
        buckets = [0] * 10
        for _ in range(20_000):
            buckets[gen.below(10)] += 1
        for count in buckets:
            assert 1700 < count < 2300
