"""Zipf-skewed workload (extension)."""

import numpy as np
import pytest

from repro.workload import ZipfWorkload


class TestZipf:
    def test_batch_in_range(self):
        workload = ZipfWorkload(
            total_segments=10_000, universe=500, seed=0
        )
        batch = workload.sample_batch(100)
        assert batch.min() >= 0
        assert batch.max() < 10_000

    def test_distinct_mode(self):
        workload = ZipfWorkload(
            total_segments=10_000, universe=500, seed=0
        )
        batch = workload.sample_batch(200, distinct=True)
        assert len(set(batch.tolist())) == 200

    def test_distinct_overdraw_rejected(self):
        workload = ZipfWorkload(total_segments=1000, universe=50, seed=0)
        with pytest.raises(ValueError):
            workload.sample_batch(51, distinct=True)

    def test_skew_concentrates_on_hot_segments(self):
        workload = ZipfWorkload(
            total_segments=100_000, universe=1000, alpha=1.3, seed=1
        )
        batch = workload.sample_batch(5000, distinct=False)
        hottest = workload._placement[0]
        hits = int((batch == hottest).sum())
        # The rank-1 segment should absorb far more than 1/universe.
        assert hits > 5000 // 1000 * 5

    def test_universe_validated(self):
        with pytest.raises(ValueError):
            ZipfWorkload(total_segments=100, universe=101)
        with pytest.raises(ValueError):
            ZipfWorkload(total_segments=100, universe=50, alpha=0.0)

    def test_deterministic(self):
        a = ZipfWorkload(10_000, seed=7).sample_batch(50)
        b = ZipfWorkload(10_000, seed=7).sample_batch(50)
        np.testing.assert_array_equal(a, b)


class TestClusteredPlacement:
    def test_hot_set_forms_runs(self):
        workload = ZipfWorkload(
            total_segments=100_000,
            universe=640,
            placement="clustered",
            run_length=64,
            seed=3,
        )
        hot = np.sort(workload._placement)
        gaps = np.diff(hot)
        # Mostly consecutive segments: at least (1 - runs/universe) of
        # the gaps are exactly 1.
        assert (gaps == 1).sum() >= 640 - 10 - 1

    def test_clustered_batches_span_fewer_sections(self, ):
        from repro.geometry import generate_tape

        tape = generate_tape(seed=4)
        scattered = ZipfWorkload(
            total_segments=tape.total_segments,
            universe=4_000,
            placement="scattered",
            seed=5,
        ).sample_batch(128)
        clustered = ZipfWorkload(
            total_segments=tape.total_segments,
            universe=4_000,
            placement="clustered",
            run_length=128,
            seed=5,
        ).sample_batch(128)

        def sections(batch):
            return len(set(tape.global_section_of(batch).tolist()))

        assert sections(clustered) < sections(scattered) / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfWorkload(1000, placement="weird")
        with pytest.raises(ValueError):
            ZipfWorkload(1000, placement="clustered", run_length=0)
        with pytest.raises(ValueError):
            # 3 runs of 400 cannot be placed on a 2-slot grid.
            ZipfWorkload(
                1000, universe=1000, placement="clustered",
                run_length=400,
            )
