"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["figure4"])
        assert args.experiment == "figure4"
        assert args.scale == "quick"
        assert args.tape_seed == 1
        assert args.max_length is None

    def test_all_flags(self):
        args = build_parser().parse_args(
            [
                "figure8",
                "--scale", "full",
                "--tape-seed", "9",
                "--workload-seed", "4",
                "--max-length", "128",
            ]
        )
        assert args.scale == "full"
        assert args.tape_seed == 9
        assert args.workload_seed == 4
        assert args.max_length == 128

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_cache_sim_defaults(self):
        args = build_parser().parse_args(["cache-sim"])
        assert args.experiment == "cache-sim"
        assert args.cache_capacity is None
        assert args.cache_policy == "gdsf"
        assert args.cache_admission == "always"
        assert args.no_prefetch is False
        assert args.zipf_alpha == pytest.approx(0.8)

    def test_cache_sim_capacity_sweep_flag_repeats(self):
        args = build_parser().parse_args(
            ["cache-sim", "--cache-capacity", "100",
             "--cache-capacity", "400"]
        )
        assert args.cache_capacity == [100, 400]

    def test_cache_sim_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cache-sim", "--cache-policy", "arc"]
            )

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure4", "--scale", "huge"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.experiment == "trace"
        assert args.trace_jsonl is None
        assert args.smoke is False
        assert args.algorithm == "LOSS"
        assert args.max_batch == 96

    def test_library_sim_defaults(self):
        args = build_parser().parse_args(["library-sim"])
        assert args.experiment == "library-sim"
        assert args.drives is None
        assert args.cartridges is None
        assert args.assignment_policy is None
        assert args.exchange_policy == "drain"

    def test_library_sim_sweep_flags_repeat(self):
        args = build_parser().parse_args(
            [
                "library-sim",
                "--drives", "1", "--drives", "4",
                "--assignment-policy", "affinity",
                "--assignment-policy", "least-loaded",
            ]
        )
        assert args.drives == [1, 4]
        assert args.assignment_policy == ["affinity", "least-loaded"]


class TestMain:
    def test_runs_section3(self, capsys):
        assert main(["section3"]) == 0
        out = capsys.readouterr().out
        assert "Section 3" in out
        assert "96.50" in out  # the paper column

    def test_runs_truncated_figure4(self, capsys):
        assert main(["figure4", "--max-length", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "LOSS" in out

    def test_runs_truncated_figure10(self, capsys):
        assert main(["figure10", "--max-length", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "OPT" in out

    def test_chart_flag_renders_ascii(self, capsys):
        assert main(["figure4", "--max-length", "2", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "seconds per locate vs schedule length" in out
        assert "|" in out  # the chart frame

    def test_runs_cache_sim(self, capsys):
        assert main(
            [
                "cache-sim",
                "--horizon-hours", "0.5",
                "--rate-per-hour", "240",
                "--cache-capacity", "200",
                "--hot-set", "1000",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Cache-sim" in out
        assert "hit %" in out
        assert "p99 (min)" in out

    def test_cache_sim_export(self, capsys, tmp_path):
        out_file = tmp_path / "cache.csv"
        assert main(
            [
                "cache-sim",
                "--horizon-hours", "0.25",
                "--rate-per-hour", "240",
                "--cache-capacity", "100",
                "--hot-set", "500",
                "--out", str(out_file),
            ]
        ) == 0
        assert out_file.exists()
        assert "exported to" in capsys.readouterr().out

    def test_runs_trace_smoke(self, capsys, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        assert main(
            [
                "trace",
                "--smoke",
                "--horizon-hours", "0.1",
                "--rate-per-hour", "120",
                "--max-batch", "8",
                "--trace-jsonl", str(jsonl),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "phases reconcile" in out
        assert "trace mean == stats mean" in out
        assert jsonl.exists()

    def test_trace_export(self, capsys, tmp_path):
        out_file = tmp_path / "trace_summary.csv"
        assert main(
            [
                "trace",
                "--horizon-hours", "0.1",
                "--rate-per-hour", "120",
                "--max-batch", "8",
                "--out", str(out_file),
            ]
        ) == 0
        assert out_file.exists()
        assert "exported to" in capsys.readouterr().out

    def test_runs_library_sim_smoke(self, capsys):
        assert main(
            ["library-sim", "--smoke", "--horizon-hours", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Multi-drive library sweep" in out
        assert "zero lost requests" in out

    def test_library_sim_rejects_bad_drives(self):
        with pytest.raises(SystemExit):
            main(["library-sim", "--drives", "0"])

    def test_runs_optimality_smoke(self, capsys):
        assert main(["optimality", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "LTSP frontier" in out
        assert "lower bound" in out

    def test_optimality_no_frontier(self, capsys):
        assert main(
            ["optimality", "--smoke", "--no-frontier"]
        ) == 0
        out = capsys.readouterr().out
        assert "LTSP frontier" not in out

    def test_optimality_rejects_bad_frontier_grid(self):
        with pytest.raises(SystemExit):
            main(["optimality", "--frontier-length", "1"])
        with pytest.raises(SystemExit):
            main(["optimality", "--frontier-trials", "0"])

    def test_optimality_export(self, capsys, tmp_path):
        out_file = tmp_path / "frontier.json"
        assert main(
            [
                "optimality", "--smoke",
                "--frontier-algorithm", "LTSP-exact",
                "--frontier-algorithm", "LTSP-sweep",
                "--out", str(out_file),
            ]
        ) == 0
        assert out_file.exists()
        assert "exported to" in capsys.readouterr().out

    def test_library_sim_export(self, capsys, tmp_path):
        out_file = tmp_path / "library.json"
        assert main(
            [
                "library-sim", "--smoke",
                "--horizon-hours", "0.05",
                "--cartridges", "4",
                "--out", str(out_file),
            ]
        ) == 0
        assert out_file.exists()
        assert "exported to" in capsys.readouterr().out

    def test_seed_flags_change_results(self, capsys):
        assert main(["figure4", "--max-length", "1"]) == 0
        first = capsys.readouterr().out
        assert main(
            ["figure4", "--max-length", "1", "--workload-seed", "9"]
        ) == 0
        second = capsys.readouterr().out
        assert first != second
