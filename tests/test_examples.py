"""Smoke tests: the example scripts run end to end.

Only the quick examples run here (the longer simulations are exercised
through their underlying modules' own tests); each must exit cleanly
and print its headline content.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), path
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "LOSS" in out
        assert "executed" in out

    def test_skewed_workload(self, capsys):
        out = run_example("skewed_workload.py", capsys)
        assert "zipf" in out
        assert "uniform" in out

    def test_data_mining(self, capsys):
        out = run_example("data_mining_batch.py", capsys)
        assert "point queries" in out
        assert "AUTO" in out
