"""Drive profiles."""

import pytest

from repro.constants import (
    DEFAULT_TOTAL_SEGMENTS,
    READ_SECONDS_PER_SECTION,
    SEGMENT_TRANSFER_SECONDS,
)
from repro.profiles import (
    DLT4000,
    DLT7000,
    IBM3590,
    PROFILES,
    get_profile,
)


class TestRegistry:
    def test_lookup(self):
        assert get_profile("DLT4000") is DLT4000
        assert set(PROFILES) == {"DLT4000", "DLT7000", "IBM3590"}

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_profile("LTO9")


class TestDlt4000IsExactDefault:
    def test_segments(self):
        assert DLT4000.total_segments == pytest.approx(
            DEFAULT_TOTAL_SEGMENTS, rel=0.002
        )

    def test_speeds(self):
        assert DLT4000.read_seconds_per_section == (
            READ_SECONDS_PER_SECTION
        )
        assert DLT4000.segment_transfer_seconds == pytest.approx(
            SEGMENT_TRANSFER_SECONDS
        )

    def test_model_matches_default(self, full_tape, full_model, rng):
        model = DLT4000.build_model(full_tape)
        destinations = rng.integers(0, full_tape.total_segments, 200)
        import numpy as np

        np.testing.assert_allclose(
            model.locate_times(0, destinations),
            full_model.locate_times(0, destinations),
        )


class TestGenerationScaling:
    def test_published_capacities_and_rates(self):
        # Section 2 of the paper.
        assert DLT7000.capacity_bytes == pytest.approx(35e9)
        assert DLT7000.transfer_rate_bytes_per_second == pytest.approx(
            5.2e6
        )
        assert IBM3590.capacity_bytes == pytest.approx(10e9)
        assert IBM3590.transfer_rate_bytes_per_second == pytest.approx(
            9e6
        )

    def test_full_read_estimates(self):
        # DLT4000 ~3.9 h, DLT7000 ~1.9 h, 3590 ~19 min.
        assert DLT4000.full_read_seconds_estimate == pytest.approx(
            13_590, rel=0.02
        )
        assert DLT7000.full_read_seconds_estimate == pytest.approx(
            6_730, rel=0.02
        )
        assert IBM3590.full_read_seconds_estimate == pytest.approx(
            1_111, rel=0.02
        )

    def test_faster_drives_have_faster_locates(self, rng):
        times = {}
        for profile in (DLT4000, DLT7000, IBM3590):
            tape, model = profile.build_system(seed=2)
            destinations = rng.integers(0, tape.total_segments, 2000)
            times[profile.name] = float(
                model.locate_times(0, destinations).mean()
            )
        assert times["IBM3590"] < times["DLT7000"] < times["DLT4000"]

    def test_build_system_consistent(self):
        tape, model = IBM3590.build_system(seed=5)
        assert model.geometry is tape
        assert tape.total_segments == IBM3590.total_segments
        assert tape.label.startswith("IBM3590")


class TestDriveGenerationsExperiment:
    def test_scheduling_advantage_survives(self):
        from repro.experiments import drive_generations

        result = drive_generations.run(trials=3)
        for profile in result.profiles:
            assert result.speedup(profile) > 1.5
        # Faster hardware means more absolute throughput everywhere.
        assert (
            result.points[("IBM3590", "LOSS")].per_hour
            > result.points[("DLT4000", "LOSS")].per_hour
        )

    def test_report(self, capsys):
        from repro.experiments import drive_generations

        result = drive_generations.run(trials=2)
        drive_generations.report(result)
        assert "generations" in capsys.readouterr().out
