"""Fault injection."""

import numpy as np
import pytest

from repro.drive import FaultyModel, SimulatedDrive
from repro.scheduling import (
    FifoScheduler,
    LossScheduler,
    execute_schedule,
)


class TestFaultyModel:
    def test_validation(self, tiny_model):
        with pytest.raises(ValueError):
            FaultyModel(tiny_model, retry_probability=1.5)
        with pytest.raises(ValueError):
            FaultyModel(tiny_model, backup_sections=-1.0)

    def test_zero_rate_is_transparent(self, tiny_model, rng):
        faulty = FaultyModel(tiny_model, retry_probability=0.0)
        destinations = rng.integers(0, 100, 50)
        np.testing.assert_array_equal(
            faulty.locate_times(0, destinations),
            tiny_model.locate_times(0, destinations),
        )

    def test_faults_only_add_time(self, tiny_model, rng):
        faulty = FaultyModel(tiny_model, retry_probability=0.3, seed=1)
        destinations = rng.integers(0, 100, 200)
        base = tiny_model.locate_times(0, destinations)
        measured = faulty.locate_times(0, destinations)
        assert (measured >= base).all()
        assert (measured > base).any()

    def test_fault_rate_approximately_respected(self, full_model, rng):
        faulty = FaultyModel(full_model, retry_probability=0.05, seed=2)
        sources = rng.integers(0, full_model.geometry.total_segments,
                               20_000)
        destinations = rng.integers(
            0, full_model.geometry.total_segments, 20_000
        )
        base = full_model.times(sources, destinations)
        measured = faulty.times(sources, destinations)
        rate = float((measured > base).mean())
        assert 0.03 < rate < 0.07

    def test_deterministic_per_pair(self, tiny_model, rng):
        faulty = FaultyModel(tiny_model, retry_probability=0.2, seed=3)
        destinations = rng.integers(0, 100, 100)
        first = faulty.locate_times(7, destinations)
        second = faulty.locate_times(7, destinations)
        np.testing.assert_array_equal(first, second)

    def test_retry_penalty_positive(self, tiny_model):
        faulty = FaultyModel(tiny_model, backup_sections=0.5)
        assert faulty.retry_penalty_seconds() == pytest.approx(
            0.5 * (10.0 + 15.5)
        )


class TestFaultMaskValidation:
    """Regression: ``asarray(..., dtype=uint64)`` used to wrap negative
    positions to huge positives and truncate fractional ones, yielding a
    plausible-looking but arbitrary fault mask instead of an error."""

    def test_negative_source_raises(self, tiny_model):
        faulty = FaultyModel(tiny_model, retry_probability=0.2, seed=1)
        with pytest.raises(ValueError, match="sources must be >= 0"):
            faulty._fault_mask([-1], [5])

    def test_negative_destination_raises(self, tiny_model):
        faulty = FaultyModel(tiny_model, retry_probability=0.2, seed=1)
        with pytest.raises(ValueError, match="destinations must be >= 0"):
            faulty._fault_mask([3], np.array([-7]))

    def test_non_finite_raises(self, tiny_model):
        faulty = FaultyModel(tiny_model, retry_probability=0.2, seed=1)
        with pytest.raises(ValueError, match="finite"):
            faulty._fault_mask([np.nan], [5])
        with pytest.raises(ValueError, match="finite"):
            faulty._fault_mask([1.0], [np.inf])

    def test_non_numeric_raises(self, tiny_model):
        faulty = FaultyModel(tiny_model, retry_probability=0.2, seed=1)
        with pytest.raises(ValueError, match="numeric"):
            faulty._fault_mask(["3"], [5])

    def test_fractional_positions_round_not_truncate(self, tiny_model):
        faulty = FaultyModel(tiny_model, retry_probability=0.3, seed=2)
        exact = faulty._fault_mask([7, 12], [40, 41])
        # 6.6 must hash as segment 7, not truncate to 6.
        rounded = faulty._fault_mask([6.6, 12.4], [39.9, 41.2])
        np.testing.assert_array_equal(exact, rounded)

    def test_float_positions_match_int_positions(self, tiny_model):
        faulty = FaultyModel(tiny_model, retry_probability=0.3, seed=2)
        np.testing.assert_array_equal(
            faulty._fault_mask([1.0, 2.0, 3.0], [9.0, 8.0, 7.0]),
            faulty._fault_mask([1, 2, 3], [9, 8, 7]),
        )

    def test_locate_times_still_accept_float_destinations(
        self, tiny_model
    ):
        faulty = FaultyModel(tiny_model, retry_probability=0.3, seed=2)
        np.testing.assert_array_equal(
            faulty.locate_times(0, np.array([5.0, 9.0])),
            faulty.locate_times(0, np.array([5, 9])),
        )


class TestRobustnessUnderFaults:
    def test_schedules_complete_and_loss_still_wins(self, full_model,
                                                    rng):
        faulty = FaultyModel(full_model, retry_probability=0.05, seed=4)
        batch = rng.choice(
            full_model.geometry.total_segments, 48, replace=False
        ).tolist()

        loss_schedule = LossScheduler().schedule(full_model, 0, batch)
        fifo_schedule = FifoScheduler().schedule(full_model, 0, batch)

        loss_time = execute_schedule(
            SimulatedDrive(faulty), loss_schedule
        ).total_seconds
        fifo_time = execute_schedule(
            SimulatedDrive(faulty), fifo_schedule
        ).total_seconds
        assert loss_time < 0.7 * fifo_time

    def test_estimate_error_scales_with_fault_rate(self, full_model,
                                                   rng):
        batch = rng.choice(
            full_model.geometry.total_segments, 64, replace=False
        ).tolist()
        schedule = LossScheduler().schedule(full_model, 0, batch)
        errors = []
        for probability in (0.01, 0.10):
            faulty = FaultyModel(
                full_model, retry_probability=probability, seed=5
            )
            measured = execute_schedule(
                SimulatedDrive(faulty), schedule
            ).total_seconds
            errors.append(
                abs(schedule.estimated_seconds - measured) / measured
            )
        assert errors[0] < errors[1]
        assert errors[1] < 0.25
