"""SimulatedDrive: operation accounting and the event log."""

import pytest

from repro.constants import SEGMENT_TRANSFER_SECONDS
from repro.drive import DriveEvent, EventKind, SimulatedDrive
from repro.exceptions import DriveError, SegmentOutOfRange
from repro.model import rewind_time


@pytest.fixture()
def drive(tiny_model):
    return SimulatedDrive(tiny_model, record_events=True)


class TestLocate:
    def test_matches_model(self, drive, tiny_model):
        expected = tiny_model.locate_time(0, 123)
        assert drive.locate(123) == pytest.approx(expected)
        assert drive.position == 123
        assert drive.clock_seconds == pytest.approx(expected)

    def test_sequential_locates_accumulate(self, drive, tiny_model):
        first = tiny_model.locate_time(0, 50)
        second = tiny_model.locate_time(50, 10)
        drive.locate(50)
        drive.locate(10)
        assert drive.clock_seconds == pytest.approx(first + second)

    def test_rejects_bad_segment(self, drive, tiny):
        with pytest.raises(SegmentOutOfRange):
            drive.locate(tiny.total_segments)


class TestRead:
    def test_advances_position(self, drive):
        drive.locate(10)
        seconds = drive.read(4)
        assert seconds == pytest.approx(4 * SEGMENT_TRANSFER_SECONDS)
        assert drive.position == 14

    def test_clamps_at_end_of_data(self, tiny_model, tiny):
        drive = SimulatedDrive(
            tiny_model, initial_position=tiny.total_segments - 1
        )
        drive.read(1)
        assert drive.position == tiny.total_segments - 1

    def test_rejects_overrun(self, tiny_model, tiny):
        drive = SimulatedDrive(
            tiny_model, initial_position=tiny.total_segments - 2
        )
        with pytest.raises(DriveError):
            drive.read(5)

    def test_rejects_nonpositive_count(self, drive):
        with pytest.raises(DriveError):
            drive.read(0)


class TestRewind:
    def test_returns_to_bot(self, drive, tiny):
        drive.locate(tiny.total_segments // 2)
        expected = float(rewind_time(tiny, tiny.total_segments // 2))
        assert drive.rewind() == pytest.approx(expected)
        assert drive.position == 0


class TestFullRead:
    def test_rewinds_first_if_needed(self, tiny_model, tiny):
        parked = SimulatedDrive(tiny_model, initial_position=100)
        fresh = SimulatedDrive(tiny_model)
        assert parked.read_entire_tape() > fresh.read_entire_tape()

    def test_ends_at_bot(self, drive):
        drive.read_entire_tape()
        assert drive.position == 0


class TestEvents:
    def test_log_records_operations(self, drive):
        drive.locate(30)
        drive.read(2)
        drive.rewind()
        kinds = [event.kind for event in drive.events]
        assert kinds == [EventKind.LOCATE, EventKind.READ, EventKind.REWIND]

    def test_events_are_contiguous(self, drive):
        drive.service(40, 3)
        drive.locate(7)
        events = drive.events
        for earlier, later in zip(events, events[1:]):
            assert later.start_seconds == pytest.approx(
                earlier.end_seconds
            )

    def test_event_dataclass(self):
        event = DriveEvent(EventKind.LOCATE, 1.0, 2.5, 0, 9)
        assert event.end_seconds == pytest.approx(3.5)

    def test_disabled_log_is_empty(self, tiny_model):
        drive = SimulatedDrive(tiny_model, record_events=False)
        drive.locate(5)
        assert drive.events == []


class TestHelpers:
    def test_service_combines_locate_and_read(self, drive, tiny_model):
        expected = tiny_model.locate_time(0, 25) + SEGMENT_TRANSFER_SECONDS
        assert drive.service(25) == pytest.approx(expected)
        assert drive.position == 26

    def test_what_if_does_not_move_head(self, drive):
        times = drive.locate_times_from_here([5, 10, 15])
        assert times.shape == (3,)
        assert drive.position == 0
        assert drive.clock_seconds == 0.0

    def test_initial_position_validated(self, tiny_model, tiny):
        with pytest.raises(SegmentOutOfRange):
            SimulatedDrive(tiny_model, initial_position=tiny.total_segments)
