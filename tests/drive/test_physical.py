"""Ground-truth drive: deviations from the idealized model."""

import numpy as np
import pytest

from repro.drive import (
    SimulatedDrive,
    TapeDrive,
    ground_truth_drive,
    ground_truth_model,
)


class TestGroundTruthModel:
    def test_deviates_from_ideal(self, full_tape, full_model, rng):
        truth = ground_truth_model(full_tape)
        destinations = rng.integers(0, full_tape.total_segments, 1000)
        ideal = full_model.locate_times(0, destinations)
        measured = truth.locate_times(0, destinations)
        assert not np.allclose(ideal, measured)
        # ...but only slightly: the paper's model was good to ~2 s on
        # nearly every locate.
        assert float(np.abs(ideal - measured).max()) < 2.0

    def test_short_locates_biased_long(self, full_tape, full_model, rng):
        truth = ground_truth_model(full_tape)
        destinations = rng.integers(0, full_tape.total_segments, 5000)
        ideal = full_model.locate_times(0, destinations)
        measured = truth.locate_times(0, destinations)
        short = ideal < 30.0
        long = ~short
        assert (measured[short] - ideal[short]).mean() > 0.2
        assert abs(float((measured[long] - ideal[long]).mean())) < 0.1

    def test_reproducible_measurements(self, full_tape, rng):
        destinations = rng.integers(0, full_tape.total_segments, 100)
        a = ground_truth_model(full_tape, seed=5).locate_times(
            0, destinations
        )
        b = ground_truth_model(full_tape, seed=5).locate_times(
            0, destinations
        )
        np.testing.assert_array_equal(a, b)


class TestGroundTruthDrive:
    def test_factory_wiring(self, tiny):
        drive = ground_truth_drive(tiny, initial_position=9)
        assert isinstance(drive, SimulatedDrive)
        assert isinstance(drive, TapeDrive)
        assert drive.position == 9
        assert drive.geometry is tiny

    def test_drive_uses_deviating_model(self, tiny, tiny_model):
        truth = ground_truth_drive(tiny)
        ideal = SimulatedDrive(tiny_model)
        destination = tiny.total_segments // 2
        assert truth.locate(destination) != pytest.approx(
            ideal.locate(destination), abs=1e-9
        )
