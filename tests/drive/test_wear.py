"""Tape-wear accounting."""

import pytest

from repro.drive import (
    DLT_RATED_PASSES,
    EXABYTE_RATED_PASSES,
    SimulatedDrive,
    WearMeter,
)
from repro.geometry.tape import TAPE_PHYS_LENGTH


class TestWearMeter:
    def test_passes_from_travel(self):
        meter = WearMeter()
        meter.add_travel(3 * TAPE_PHYS_LENGTH)
        assert meter.passes == pytest.approx(3.0)
        assert meter.life_used_fraction == pytest.approx(
            3.0 / DLT_RATED_PASSES
        )
        assert meter.passes_remaining == pytest.approx(
            DLT_RATED_PASSES - 3.0
        )

    def test_rejects_negative_travel(self):
        with pytest.raises(ValueError):
            WearMeter().add_travel(-1.0)

    def test_ratings_contrast(self):
        # Section 2: helical scan wears out orders of magnitude sooner.
        assert DLT_RATED_PASSES > 100 * EXABYTE_RATED_PASSES

    def test_report_text(self):
        meter = WearMeter()
        meter.add_travel(TAPE_PHYS_LENGTH)
        assert "passes" in meter.report()


class TestDriveIntegration:
    def test_full_tape_read_is_one_pass_per_track(self, tiny_model, tiny):
        meter = WearMeter()
        drive = SimulatedDrive(tiny_model, wear_meter=meter)
        drive.read_entire_tape()
        # One end-to-end traversal per track plus the (tiny) rewind.
        assert meter.passes == pytest.approx(tiny.num_tracks, abs=0.2)

    def test_locate_overshoot_counted(self, tiny_model, tiny):
        meter = WearMeter()
        drive = SimulatedDrive(tiny_model, wear_meter=meter)
        destination = tiny.total_segments // 2
        drive.locate(destination)
        direct = abs(
            float(tiny.phys_of(destination)) - float(tiny.phys_of(0))
        )
        # Travel is at least the direct distance (scan target overshoot
        # can add more).
        assert meter.travel_sections >= direct - 1e-9

    def test_reads_and_rewinds_accumulate(self, tiny_model):
        meter = WearMeter()
        drive = SimulatedDrive(tiny_model, wear_meter=meter)
        drive.locate(50)
        after_locate = meter.travel_sections
        drive.read(10)
        after_read = meter.travel_sections
        drive.rewind()
        after_rewind = meter.travel_sections
        assert after_locate > 0
        assert after_read > after_locate
        assert after_rewind > after_read

    def test_no_meter_by_default(self, tiny_model):
        drive = SimulatedDrive(tiny_model)
        drive.locate(10)
        assert drive.wear_meter is None

    def test_scheduling_reduces_wear(self, full_model, rng):
        # Scheduling does not just save time -- it saves tape life.
        from repro.scheduling import (
            FifoScheduler,
            LossScheduler,
            execute_schedule,
        )

        batch = rng.choice(
            full_model.geometry.total_segments, 48, replace=False
        ).tolist()

        fifo_meter = WearMeter()
        drive = SimulatedDrive(full_model, wear_meter=fifo_meter)
        execute_schedule(
            drive, FifoScheduler().schedule(full_model, 0, batch)
        )

        loss_meter = WearMeter()
        drive = SimulatedDrive(full_model, wear_meter=loss_meter)
        execute_schedule(
            drive, LossScheduler().schedule(full_model, 0, batch)
        )
        assert loss_meter.passes < 0.6 * fifo_meter.passes
