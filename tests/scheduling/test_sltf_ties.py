"""SLTF tie-breaking: the audited, pinned behaviour.

The module docstring of :mod:`repro.scheduling.sltf` claims the
variants "produce the same schedule up to ties".  The audit of that
claim: both greedy variants scan candidates in ascending
``(segment, length)`` order and take the *first* minimum
(``np.argmin``), so equal locate times resolve to the lowest
``(segment, length)`` — deterministically, in both.  These tests pin
that rule with a constructed exact tie and with a cross-variant
agreement sweep, so a future refactor that silently changes the rule
(e.g. by switching to an unstable sort or a last-minimum scan) fails
loudly instead of shifting schedules.
"""

import numpy as np
import pytest

from repro.scheduling import get_scheduler


def _find_exact_tie(model):
    """An (origin, low, high) with bitwise-equal nonzero locate times."""
    total = model.geometry.total_segments
    for origin in range(0, total, 7):
        times = model.locate_times(origin, np.arange(total))
        order = np.argsort(times, kind="stable")
        sorted_times = times[order]
        equal = np.flatnonzero(
            (np.diff(sorted_times) == 0.0) & (sorted_times[:-1] > 0.0)
        )
        for index in equal:
            a = int(order[index])
            b = int(order[index + 1])
            if origin not in (a, b):
                return origin, min(a, b), max(a, b)
    raise AssertionError(
        "no exact locate-time tie found on the tiny tape; the tie "
        "regression needs a new construction"
    )


@pytest.mark.parametrize("name", ["SLTF", "SLTF-naive"])
def test_equal_locate_times_resolve_to_lowest_segment(tiny_model, name):
    """On an exact tie, the lower (segment, length) is served first."""
    origin, low, high = _find_exact_tie(tiny_model)
    assert tiny_model.locate_time(origin, low) == tiny_model.locate_time(
        origin, high
    )
    # Present the batch high-first so arrival order cannot mask the rule.
    schedule = get_scheduler(name).schedule(tiny_model, origin, [high, low])
    assert [r.segment for r in schedule] == [low, high]


def test_fast_path_and_naive_agree_including_ties(tiny_model, rng):
    """The variants produce bit-identical schedules, ties included."""
    total = tiny_model.geometry.total_segments
    fast = get_scheduler("SLTF")
    naive = get_scheduler("SLTF-naive")
    for _ in range(60):
        size = int(rng.integers(2, 20))
        batch = rng.choice(total, size=size, replace=False).tolist()
        origin = int(rng.integers(0, total))
        fast_order = [
            r.segment for r in fast.schedule(tiny_model, origin, batch)
        ]
        naive_order = [
            r.segment for r in naive.schedule(tiny_model, origin, batch)
        ]
        assert fast_order == naive_order


def test_tie_rule_is_arrival_order_independent(tiny_model):
    """Reversing the batch does not change who wins the tie."""
    origin, low, high = _find_exact_tie(tiny_model)
    for name in ("SLTF", "SLTF-naive"):
        forward = get_scheduler(name).schedule(
            tiny_model, origin, [low, high]
        )
        reverse = get_scheduler(name).schedule(
            tiny_model, origin, [high, low]
        )
        assert [r.segment for r in forward] == [
            r.segment for r in reverse
        ]
