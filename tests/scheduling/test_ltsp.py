"""Unit tests for the LTSP subsystem (solver core + schedulers)."""

import itertools

import numpy as np
import pytest

from repro.model import LinearizedModel
from repro.scheduling import (
    Request,
    exact_ltsp_order,
    get_scheduler,
    linear_deadhead_sections,
)
from repro.scheduling.ltsp import (
    LtspExactScheduler,
    LtspGreedyScheduler,
    LtspRepairScheduler,
    LtspSweepScheduler,
)


def brute_force_deadhead(origin, entry, exit_, n):
    return min(
        linear_deadhead_sections(origin, entry, exit_, order)
        for order in itertools.permutations(range(n))
    )


class TestExactOrder:
    def test_empty(self):
        assert exact_ltsp_order(0.0, np.zeros(0), np.zeros(0)) == []

    def test_single(self):
        assert exact_ltsp_order(
            0.0, np.asarray([5.0]), np.asarray([6.0])
        ) == [0]

    def test_all_on_one_coordinate(self):
        entry = np.asarray([2.0, 2.0, 2.0])
        exit_ = np.asarray([2.0, 2.0, 2.0])
        order = exact_ltsp_order(2.0, entry, exit_)
        assert order == [0, 1, 2]
        assert linear_deadhead_sections(2.0, entry, exit_, order) == 0.0

    def test_simple_sweep(self):
        entry = np.asarray([1.0, 3.0, 5.0])
        exit_ = np.asarray([2.0, 4.0, 6.0])
        order = exact_ltsp_order(0.0, entry, exit_)
        assert order == [0, 1, 2]
        assert linear_deadhead_sections(0.0, entry, exit_, order) == 3.0

    def test_nested_cluster_needs_connectivity_repair(self):
        """Arcs flying over a disconnected inner cluster.

        Flow balancing alone says zero deadhead (the two long arcs
        cancel), but the head must still break off to serve the inner
        pair: the optimum detours to the cluster and ends there (the
        free end), 4 sections.  This is the case a pure per-interval
        construction gets wrong.
        """
        entry = np.asarray([0.0, 10.0, 4.0, 5.0])
        exit_ = np.asarray([10.0, 0.0, 5.0, 4.0])
        order = exact_ltsp_order(0.0, entry, exit_)
        assert sorted(order) == [0, 1, 2, 3]
        cost = linear_deadhead_sections(0.0, entry, exit_, order)
        assert cost == pytest.approx(
            brute_force_deadhead(0.0, entry, exit_, 4)
        )
        assert cost == pytest.approx(4.0)

    def test_disjoint_clusters_bridged(self):
        """Two separated clusters: the gap is paid once, not twice."""
        entry = np.asarray([0.0, 1.0, 9.0, 10.0])
        exit_ = np.asarray([1.0, 0.0, 10.0, 9.0])
        order = exact_ltsp_order(0.0, entry, exit_)
        cost = linear_deadhead_sections(0.0, entry, exit_, order)
        assert cost == pytest.approx(
            brute_force_deadhead(0.0, entry, exit_, 4)
        )

    def test_origin_isolated_between_clusters(self):
        """Head starts in dead space between two arc clusters."""
        entry = np.asarray([0.0, 1.0, 9.0, 10.0])
        exit_ = np.asarray([1.0, 0.0, 10.0, 9.0])
        order = exact_ltsp_order(5.0, entry, exit_)
        cost = linear_deadhead_sections(5.0, entry, exit_, order)
        assert cost == pytest.approx(
            brute_force_deadhead(5.0, entry, exit_, 4)
        )

    @pytest.mark.parametrize("trial", range(30))
    def test_matches_brute_force_on_random_arcs(self, rng, trial):
        n = int(rng.integers(2, 7))
        entry = rng.uniform(0.0, 14.0, size=n)
        exit_ = np.where(
            rng.random(n) < 0.5,
            np.minimum(entry + rng.uniform(0.0, 2.0, size=n), 14.0),
            entry,
        )
        origin = float(rng.uniform(0.0, 14.0))
        order = exact_ltsp_order(origin, entry, exit_)
        assert sorted(order) == list(range(n))
        assert linear_deadhead_sections(
            origin, entry, exit_, order
        ) == pytest.approx(
            brute_force_deadhead(origin, entry, exit_, n), abs=1e-9
        )

    def test_deterministic(self, rng):
        entry = rng.uniform(0.0, 14.0, size=12)
        exit_ = np.minimum(entry + rng.uniform(0.0, 1.0, size=12), 14.0)
        first = exact_ltsp_order(7.0, entry, exit_)
        second = exact_ltsp_order(7.0, entry, exit_)
        assert first == second


class TestLtspSchedulers:
    @pytest.fixture()
    def linear(self, tiny_model):
        return LinearizedModel(tiny_model)

    def _batch(self, model, rng, n=12):
        total = model.geometry.total_segments
        segments = rng.choice(total - 3, size=n, replace=False)
        lengths = rng.integers(1, 4, size=n)
        return [
            Request(int(s), int(length))
            for s, length in zip(segments, lengths)
        ]

    def test_exact_is_optimal_under_linear_model(
        self, tiny_model, linear, rng
    ):
        batch = self._batch(tiny_model, rng, n=7)
        exact = LtspExactScheduler().schedule(linear, 0, batch)
        opt = get_scheduler("OPT").schedule(linear, 0, batch)
        assert exact.estimated_seconds == pytest.approx(
            opt.estimated_seconds, abs=1e-6
        )

    def test_repair_never_worse_than_exact_under_true_model(
        self, tiny_model, rng
    ):
        for _ in range(5):
            batch = self._batch(tiny_model, rng)
            origin = int(rng.integers(0, tiny_model.geometry.total_segments))
            exact = LtspExactScheduler().schedule(
                tiny_model, origin, batch
            )
            repaired = LtspRepairScheduler().schedule(
                tiny_model, origin, batch
            )
            assert (
                repaired.estimated_seconds
                <= exact.estimated_seconds + 1e-6
            )

    def test_repair_limit_drops_to_one_round(self, tiny_model, rng):
        batch = self._batch(tiny_model, rng, n=8)
        eager = LtspRepairScheduler(repair_limit=4)
        relaxed = LtspRepairScheduler()
        fast = eager.schedule(tiny_model, 0, batch)
        thorough = relaxed.schedule(tiny_model, 0, batch)
        assert sorted(r.segment for r in fast) == sorted(
            r.segment for r in thorough
        )
        assert thorough.estimated_seconds <= fast.estimated_seconds + 1e-6

    def test_sweep_picks_the_cheaper_direction(self, linear):
        # Serpentine ids are not physically monotone: pick the
        # physically lowest and highest segments explicitly.
        total = linear.geometry.total_segments
        phys = np.asarray(
            linear.geometry.phys_of(np.arange(total - 1, dtype=np.int64))
        )
        low = int(np.argmin(phys))
        high = int(np.argmax(phys))
        batch = [Request(low, 1), Request(high, 1)]
        # Head parked at the physical top: descending sweep wins.
        schedule = LtspSweepScheduler().schedule(linear, high, batch)
        assert [r.segment for r in schedule] == [high, low]
        # Head parked at the physical bottom: ascending sweep wins.
        schedule = LtspSweepScheduler().schedule(linear, low, batch)
        assert [r.segment for r in schedule] == [low, high]

    @pytest.mark.parametrize(
        "scheduler_cls",
        [
            LtspExactScheduler,
            LtspRepairScheduler,
            LtspSweepScheduler,
            LtspGreedyScheduler,
        ],
    )
    def test_relabeling_invariance(
        self, scheduler_cls, tiny_model, rng
    ):
        """The schedule ignores the arrival order of the batch."""
        batch = self._batch(tiny_model, rng)
        shuffled = list(batch)
        rng.shuffle(shuffled)
        scheduler = scheduler_cls()
        first = scheduler.schedule(tiny_model, 5, batch)
        second = scheduler.schedule(tiny_model, 5, shuffled)
        assert [
            (r.segment, r.length) for r in first
        ] == [(r.segment, r.length) for r in second]

    def test_registered_names(self):
        for name in (
            "LTSP-exact", "LTSP-repair", "LTSP-sweep", "LTSP-greedy"
        ):
            assert get_scheduler(name).name == name
