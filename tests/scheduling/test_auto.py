"""AUTO: the paper's size-based policy."""

import pytest

from repro.scheduling import AutoScheduler
from repro.scheduling.loss import LossScheduler
from repro.scheduling.opt import OptScheduler
from repro.scheduling.read_all import ReadEntireTapeScheduler


class TestChoice:
    def test_paper_thresholds(self):
        auto = AutoScheduler()
        assert isinstance(auto.choose(1), OptScheduler)
        assert isinstance(auto.choose(10), OptScheduler)
        assert isinstance(auto.choose(11), LossScheduler)
        assert isinstance(auto.choose(1536), LossScheduler)
        assert isinstance(auto.choose(1537), ReadEntireTapeScheduler)

    def test_custom_thresholds(self):
        auto = AutoScheduler(opt_limit=2, loss_limit=5)
        assert isinstance(auto.choose(3), LossScheduler)
        assert isinstance(auto.choose(6), ReadEntireTapeScheduler)


class TestDispatch:
    def test_schedule_small_batch_is_optimal(self, tiny_model, rng):
        batch = rng.choice(
            tiny_model.geometry.total_segments, 6, replace=False
        ).tolist()
        auto = AutoScheduler().schedule(tiny_model, 0, batch)
        opt = OptScheduler().schedule(tiny_model, 0, batch)
        assert auto.algorithm == "OPT"
        assert auto.estimated_seconds == pytest.approx(
            opt.estimated_seconds
        )

    def test_schedule_medium_batch_uses_loss(self, tiny_model, rng):
        batch = rng.choice(
            tiny_model.geometry.total_segments, 30, replace=False
        ).tolist()
        schedule = AutoScheduler().schedule(tiny_model, 0, batch)
        assert schedule.algorithm == "LOSS"

    def test_schedule_huge_batch_reads_tape(self, tiny_model, rng):
        auto = AutoScheduler(loss_limit=20)
        batch = rng.choice(
            tiny_model.geometry.total_segments, 30, replace=False
        ).tolist()
        schedule = auto.schedule(tiny_model, 0, batch)
        assert schedule.algorithm == "READ"
        assert schedule.whole_tape

    def test_empty_batch_rejected(self, tiny_model):
        from repro.exceptions import EmptyBatchError

        with pytest.raises(EmptyBatchError):
            AutoScheduler().schedule(tiny_model, 0, [])
