"""Two-step lookahead greedy."""

import numpy as np

from repro.scheduling import (
    LookaheadScheduler,
    LossScheduler,
    SltfCoalesceScheduler,
    lookahead_order,
)


class TestLookaheadOrder:
    def test_trivial_sizes(self):
        assert lookahead_order(np.zeros((1, 0))) == []
        assert lookahead_order(np.asarray([[5.0], [0.0]])) == [0]

    def test_visits_everything_once(self, rng):
        for n in (2, 5, 12):
            matrix = rng.uniform(1, 100, size=(n + 1, n))
            order = lookahead_order(matrix)
            assert sorted(order) == list(range(n))

    def test_avoids_the_classic_greedy_trap(self):
        # From the origin, city 0 is nearest, but entering it strands
        # the tour (its exits are huge).  Plain greedy takes it first;
        # lookahead defers it to the end.
        matrix = np.asarray(
            [
                [1.0, 2.0, 3.0],     # origin ->
                [500.0, 500.0, 500.0],  # after city 0 ->
                [9.0, 1.0, 1.0],     # after city 1 ->
                [9.0, 1.0, 1.0],     # after city 2 ->
            ]
        )
        order = lookahead_order(matrix)
        assert order[0] != 0
        assert order[-1] == 0

    def test_pure_greedy_when_second_leg_uniform(self, rng):
        # If every onward option costs the same, lookahead reduces to
        # nearest-first.
        n = 6
        matrix = np.full((n + 1, n), 7.0)
        matrix[0] = rng.permutation(np.arange(1.0, n + 1))
        order = lookahead_order(matrix)
        assert order[0] == int(np.argmin(matrix[0]))


class TestLookaheadScheduler:
    def test_valid_permutation(self, full_model, rng):
        batch = rng.choice(
            full_model.geometry.total_segments, 64, replace=False
        ).tolist()
        schedule = LookaheadScheduler().schedule(full_model, 0, batch)
        assert sorted(r.segment for r in schedule) == sorted(batch)

    def test_quality_relative_to_neighbours(self, full_model, rng):
        from repro.scheduling import SltfScheduler

        lookahead_total = 0.0
        sltf_plain_total = 0.0
        sltf_coalesce_total = 0.0
        loss_total = 0.0
        for _ in range(6):
            batch = rng.choice(
                full_model.geometry.total_segments, 96, replace=False
            ).tolist()
            lookahead_total += LookaheadScheduler().schedule(
                full_model, 0, batch
            ).estimated_seconds
            sltf_plain_total += SltfScheduler().schedule(
                full_model, 0, batch
            ).estimated_seconds
            sltf_coalesce_total += SltfCoalesceScheduler().schedule(
                full_model, 0, batch
            ).estimated_seconds
            loss_total += LossScheduler().schedule(
                full_model, 0, batch
            ).estimated_seconds
        # The documented finding: beats the plain per-section greedy,
        # ~parity with the coalesced greedy, and LOSS stays ahead —
        # one step of lookahead does not buy LOSS's regret advantage.
        assert lookahead_total < sltf_plain_total
        assert lookahead_total < 1.05 * sltf_coalesce_total
        assert loss_total < lookahead_total

    def test_single_group(self, full_model):
        schedule = LookaheadScheduler().schedule(
            full_model, 0, [10, 20, 30]
        )
        assert [r.segment for r in schedule] == [10, 20, 30]

    def test_registered(self):
        from repro.scheduling import get_scheduler

        assert isinstance(
            get_scheduler("SLTF-lookahead"), LookaheadScheduler
        )
