"""Or-opt schedule improvement."""

import numpy as np
import pytest

from repro.model.distance_matrix import schedule_distance_matrix
from repro.scheduling import (
    FifoScheduler,
    ImprovedLossScheduler,
    LossScheduler,
    OptScheduler,
    improve_schedule,
    or_opt_order,
)


def order_cost(distance, order):
    cost = distance[0, order[0]]
    for a, b in zip(order, order[1:]):
        cost += distance[a + 1, b]
    return float(cost)


class TestOrOptOrder:
    def test_never_worse(self, tiny_model, rng):
        for _ in range(5):
            segments = rng.choice(
                tiny_model.geometry.total_segments, 10, replace=False
            )
            distance = schedule_distance_matrix(tiny_model, 0, segments)
            start = list(rng.permutation(10))
            improved = or_opt_order(distance, start)
            assert sorted(improved) == list(range(10))
            assert order_cost(distance, improved) <= order_cost(
                distance, start
            ) + 1e-9

    def test_fixes_obvious_blunder(self, full_model, rng):
        # A sorted batch with one request moved to the front: Or-opt
        # must restore something close to sorted order.
        segments = np.sort(
            rng.choice(
                full_model.geometry.total_segments, 8, replace=False
            )
        )
        distance = schedule_distance_matrix(full_model, 0, segments)
        blundered = [7] + list(range(7))
        improved = or_opt_order(distance, blundered)
        assert order_cost(distance, improved) < order_cost(
            distance, blundered
        )

    def test_tiny_orders_pass_through(self, tiny_model):
        distance = schedule_distance_matrix(
            tiny_model, 0, np.asarray([5, 9])
        )
        assert or_opt_order(distance, [1, 0]) == [1, 0]


class TestImproveSchedule:
    def test_improves_fifo_substantially(self, full_model, rng):
        batch = rng.choice(
            full_model.geometry.total_segments, 32, replace=False
        ).tolist()
        fifo = FifoScheduler().schedule(full_model, 0, batch)
        improved = improve_schedule(full_model, fifo)
        assert improved.estimated_seconds < 0.8 * fifo.estimated_seconds
        assert improved.is_permutation_of(fifo.requests)
        assert improved.algorithm.endswith("+oropt")

    def test_opt_is_a_fixed_point(self, tiny_model, rng):
        batch = rng.choice(
            tiny_model.geometry.total_segments, 8, replace=False
        ).tolist()
        opt = OptScheduler().schedule(tiny_model, 0, batch)
        improved = improve_schedule(tiny_model, opt)
        assert improved.estimated_seconds == pytest.approx(
            opt.estimated_seconds
        )

    def test_whole_tape_untouched(self, tiny_model):
        from repro.scheduling import ReadEntireTapeScheduler

        schedule = ReadEntireTapeScheduler().schedule(tiny_model, 0, [5])
        assert improve_schedule(tiny_model, schedule) is schedule


class TestImprovedLossScheduler:
    def test_never_worse_than_loss(self, full_model, rng):
        for _ in range(3):
            batch = rng.choice(
                full_model.geometry.total_segments, 48, replace=False
            ).tolist()
            loss = LossScheduler().schedule(full_model, 0, batch)
            improved = ImprovedLossScheduler().schedule(
                full_model, 0, batch
            )
            assert (
                improved.estimated_seconds
                <= loss.estimated_seconds + 1e-6
            )

    def test_registered(self):
        from repro.scheduling import get_scheduler

        assert isinstance(
            get_scheduler("LOSS+oropt"), ImprovedLossScheduler
        )
