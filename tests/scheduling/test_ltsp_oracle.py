"""Differential oracle: the exact LTSP solver versus everything else.

On the linearized locate model the polynomial solver of
:mod:`repro.scheduling.ltsp` and the exponential Held–Karp solver of
:mod:`repro.scheduling.opt` minimize the *same* objective, so their
costs must agree exactly wherever Held–Karp is feasible — and past
that ceiling the exact LTSP cost is a true optimum every registered
scheduler must respect.  These tests sweep random tapes, head origins,
batch shapes, and coalesce thresholds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import tiny_tape
from repro.model import (
    LinearizedModel,
    LocateTimeModel,
    out_positions,
    schedule_distance_matrix,
)
from repro.scheduling import (
    Request,
    SltfCoalesceScheduler,
    brute_force_path,
    exact_ltsp_order,
    get_scheduler,
    held_karp_path,
    locate_sequence_times,
    scheduler_names,
)
from repro.scheduling.ltsp import linear_deadhead_sections

_TAPE_SEEDS = (3, 21, 33)
_TAPES = {seed: tiny_tape(seed=seed, tracks=4) for seed in _TAPE_SEEDS}
_MODELS = {seed: LocateTimeModel(tape) for seed, tape in _TAPES.items()}
_LINEAR = {seed: LinearizedModel(m) for seed, m in _MODELS.items()}

tape_seeds = st.sampled_from(_TAPE_SEEDS)
fractions = st.floats(min_value=0.0, max_value=1.0 - 1e-9)
request_shapes = st.lists(
    st.tuples(fractions, st.integers(min_value=1, max_value=3)),
    min_size=1,
    max_size=9,
)


def _batch(tape, shapes):
    total = tape.total_segments
    return [
        Request(min(int(f * total), total - length), length)
        for f, length in shapes
    ]


def _origin(tape, fraction):
    return min(int(fraction * tape.total_segments), tape.total_segments - 1)


def _linear_matrix(seed, origin, batch):
    segments = np.asarray([r.segment for r in batch], dtype=np.int64)
    lengths = np.asarray([r.length for r in batch], dtype=np.int64)
    return schedule_distance_matrix(
        _LINEAR[seed], origin, segments, lengths=lengths
    )


def _exact_order(seed, origin, batch):
    tape = _TAPES[seed]
    segments = np.asarray([r.segment for r in batch], dtype=np.int64)
    lengths = np.asarray([r.length for r in batch], dtype=np.int64)
    exits = out_positions(segments, lengths, tape.total_segments)
    return exact_ltsp_order(
        float(tape.phys_of(origin)),
        np.asarray(tape.phys_of(segments), dtype=np.float64),
        np.asarray(tape.phys_of(exits), dtype=np.float64),
    )


def path_cost(matrix, order):
    cost = matrix[0, order[0]]
    for a, b in zip(order, order[1:]):
        cost += matrix[a + 1, b]
    return float(cost)


@given(seed=tape_seeds, shapes=request_shapes, origin_f=fractions)
@settings(max_examples=150, deadline=None)
def test_exact_matches_held_karp(seed, shapes, origin_f):
    """Same optimum as Held–Karp on the linearized distance matrix."""
    tape = _TAPES[seed]
    batch = _batch(tape, shapes)
    origin = _origin(tape, origin_f)
    matrix = _linear_matrix(seed, origin, batch)
    order = _exact_order(seed, origin, batch)
    assert sorted(order) == list(range(len(batch)))
    assert path_cost(matrix, order) == pytest.approx(
        path_cost(matrix, held_karp_path(matrix)), abs=1e-9
    )


@given(
    seed=tape_seeds,
    shapes=st.lists(
        st.tuples(fractions, st.integers(min_value=1, max_value=3)),
        min_size=1,
        max_size=7,
    ),
    origin_f=fractions,
)
@settings(max_examples=60, deadline=None)
def test_exact_matches_brute_force(seed, shapes, origin_f):
    """Cross-check against full permutation enumeration (n <= 7)."""
    tape = _TAPES[seed]
    batch = _batch(tape, shapes)
    origin = _origin(tape, origin_f)
    matrix = _linear_matrix(seed, origin, batch)
    order = _exact_order(seed, origin, batch)
    assert path_cost(matrix, order) == pytest.approx(
        path_cost(matrix, brute_force_path(matrix)), abs=1e-9
    )


@pytest.mark.parametrize("n", [10, 11, 12])
@pytest.mark.parametrize("seed", _TAPE_SEEDS)
def test_exact_matches_held_karp_up_to_twelve(seed, n, rng):
    """Every n <= 12 oracle case agrees with Held–Karp."""
    tape = _TAPES[seed]
    total = tape.total_segments
    for _ in range(3):
        batch = [
            Request(int(s), int(length))
            for s, length in zip(
                rng.integers(0, total, size=n),
                rng.integers(1, 4, size=n),
            )
        ]
        origin = int(rng.integers(0, total))
        matrix = _linear_matrix(seed, origin, batch)
        order = _exact_order(seed, origin, batch)
        assert path_cost(matrix, order) == pytest.approx(
            path_cost(matrix, held_karp_path(matrix)), abs=1e-9
        )


def _comparable_names():
    return [
        name for name in scheduler_names()
        if name not in ("READ", "AUTO") and not name.startswith("OPT")
    ]


@given(
    seed=tape_seeds,
    shapes=st.lists(
        st.tuples(fractions, st.integers(min_value=1, max_value=3)),
        min_size=1,
        max_size=16,
        unique_by=lambda t: t[0],
    ),
    origin_f=fractions,
    name=st.sampled_from(sorted(_comparable_names())),
)
@settings(max_examples=120, deadline=None)
def test_no_registered_scheduler_beats_exact(seed, shapes, origin_f, name):
    """The exact linear optimum lower-bounds every registered strategy.

    Each scheduler plans under the linearized model; its order's linear
    deadhead must be at least the exact LTSP optimum's.
    """
    tape = _TAPES[seed]
    linear = _LINEAR[seed]
    batch = _batch(tape, shapes)
    origin = _origin(tape, origin_f)
    optimum = path_cost(
        _linear_matrix(seed, origin, batch),
        _exact_order(seed, origin, batch),
    )
    schedule = get_scheduler(name).schedule(linear, origin, batch)
    deadhead = float(locate_sequence_times(linear, schedule).sum())
    assert deadhead >= optimum - 1e-6


@given(
    seed=tape_seeds,
    shapes=st.lists(
        st.tuples(fractions, st.integers(min_value=1, max_value=2)),
        min_size=1,
        max_size=10,
        unique_by=lambda t: t[0],
    ),
    origin_f=fractions,
    threshold=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_coalesce_thresholds_never_beat_exact(
    seed, shapes, origin_f, threshold
):
    """SLTF-coalesce respects the optimum at every threshold."""
    tape = _TAPES[seed]
    linear = _LINEAR[seed]
    batch = _batch(tape, shapes)
    origin = _origin(tape, origin_f)
    optimum = path_cost(
        _linear_matrix(seed, origin, batch),
        _exact_order(seed, origin, batch),
    )
    scheduler = SltfCoalesceScheduler(threshold=threshold)
    schedule = scheduler.schedule(linear, origin, batch)
    deadhead = float(locate_sequence_times(linear, schedule).sum())
    assert deadhead >= optimum - 1e-6


@given(seed=tape_seeds, shapes=request_shapes, origin_f=fractions)
@settings(max_examples=60, deadline=None)
def test_exact_cost_equals_deadhead_helper(seed, shapes, origin_f):
    """Matrix path cost and the deadhead helper agree on the order."""
    tape = _TAPES[seed]
    batch = _batch(tape, shapes)
    origin = _origin(tape, origin_f)
    order = _exact_order(seed, origin, batch)
    segments = np.asarray([r.segment for r in batch], dtype=np.int64)
    lengths = np.asarray([r.length for r in batch], dtype=np.int64)
    exits = out_positions(segments, lengths, tape.total_segments)
    sections = linear_deadhead_sections(
        float(tape.phys_of(origin)),
        np.asarray(tape.phys_of(segments), dtype=np.float64),
        np.asarray(tape.phys_of(exits), dtype=np.float64),
        order,
    )
    rate = _LINEAR[seed].seconds_per_section
    assert sections * rate == pytest.approx(
        path_cost(_linear_matrix(seed, origin, batch), order), abs=1e-9
    )
