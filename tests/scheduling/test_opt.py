"""OPT: exactness of Held–Karp against brute force, and optimality."""

import numpy as np
import pytest

from repro.exceptions import BatchTooLarge
from repro.scheduling import (
    BruteForceOptScheduler,
    OptScheduler,
    brute_force_path,
    held_karp_path,
    get_scheduler,
    scheduler_names,
)


def random_rectangular(rng, n):
    return rng.uniform(1.0, 100.0, size=(n + 1, n))


def path_cost(matrix, order):
    cost = matrix[0, order[0]]
    for a, b in zip(order, order[1:]):
        cost += matrix[a + 1, b]
    return float(cost)


class TestHeldKarp:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 8])
    def test_matches_brute_force(self, rng, n):
        for _ in range(5):
            matrix = random_rectangular(rng, n)
            dp_order = held_karp_path(matrix)
            bf_order = brute_force_path(matrix)
            assert path_cost(matrix, dp_order) == pytest.approx(
                path_cost(matrix, bf_order)
            )

    def test_visits_everything(self, rng):
        matrix = random_rectangular(rng, 9)
        assert sorted(held_karp_path(matrix)) == list(range(9))

    def test_empty_and_single(self):
        assert held_karp_path(np.zeros((1, 0))) == []
        assert held_karp_path(np.asarray([[3.0], [0.0]])) == [0]


class TestOptScheduler:
    def test_not_worse_than_any_other_scheduler(self, tiny_model, rng):
        batch = rng.choice(
            tiny_model.geometry.total_segments, 9, replace=False
        ).tolist()
        opt = OptScheduler().schedule(tiny_model, 0, batch)
        for name in scheduler_names():
            if name in ("READ", "AUTO") or name.startswith("OPT"):
                continue
            other = get_scheduler(name).schedule(tiny_model, 0, batch)
            assert (
                opt.estimated_seconds
                <= other.estimated_seconds + 1e-6
            ), name

    def test_agrees_with_permutation_opt(self, tiny_model, rng):
        for _ in range(4):
            batch = rng.choice(
                tiny_model.geometry.total_segments, 7, replace=False
            ).tolist()
            dp = OptScheduler().schedule(tiny_model, 0, batch)
            bf = BruteForceOptScheduler().schedule(tiny_model, 0, batch)
            assert dp.estimated_seconds == pytest.approx(
                bf.estimated_seconds
            )

    def test_size_limit(self, tiny_model):
        with pytest.raises(BatchTooLarge):
            OptScheduler(limit=5).schedule(tiny_model, 0, list(range(6)))

    def test_brute_force_default_limit(self, tiny_model):
        with pytest.raises(BatchTooLarge):
            BruteForceOptScheduler().schedule(
                tiny_model, 0, list(range(10))
            )

    def test_single_request(self, tiny_model):
        schedule = OptScheduler().schedule(tiny_model, 0, [5])
        assert [r.segment for r in schedule] == [5]
