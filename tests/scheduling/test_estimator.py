"""Schedule-time estimation, and its agreement with execution."""

import pytest

from repro.constants import SEGMENT_TRANSFER_SECONDS
from repro.drive import SimulatedDrive
from repro.scheduling import (
    FifoScheduler,
    Request,
    Schedule,
    estimate_locate_seconds,
    estimate_schedule_seconds,
    execute_schedule,
    full_read_seconds,
    get_scheduler,
    locate_sequence_times,
)


class TestLocateSequence:
    def test_per_request_times(self, tiny_model):
        schedule = Schedule(
            requests=(Request(40), Request(10)), origin=0,
            algorithm="TEST",
        )
        times = locate_sequence_times(tiny_model, schedule)
        assert times.shape == (2,)
        assert times[0] == pytest.approx(tiny_model.locate_time(0, 40))
        assert times[1] == pytest.approx(tiny_model.locate_time(41, 10))

    def test_multi_segment_out_positions(self, tiny_model):
        schedule = Schedule(
            requests=(Request(10, length=5), Request(40)),
            origin=0,
            algorithm="TEST",
        )
        times = locate_sequence_times(tiny_model, schedule)
        assert times[1] == pytest.approx(tiny_model.locate_time(15, 40))


class TestEstimate:
    def test_transfers_included_by_default(self, tiny_model):
        schedule = Schedule(
            requests=(Request(5, length=10),), origin=0, algorithm="TEST"
        )
        with_transfer = estimate_schedule_seconds(tiny_model, schedule)
        without = estimate_schedule_seconds(
            tiny_model, schedule, include_transfers=False
        )
        assert with_transfer - without == pytest.approx(
            10 * SEGMENT_TRANSFER_SECONDS
        )

    def test_locate_only(self, tiny_model):
        schedule = Schedule(
            requests=(Request(5), Request(70)), origin=0, algorithm="TEST"
        )
        assert estimate_locate_seconds(
            tiny_model, schedule
        ) == pytest.approx(
            estimate_schedule_seconds(
                tiny_model, schedule, include_transfers=False
            )
        )

    def test_whole_tape_constant(self, tiny_model, tiny):
        schedule = Schedule(
            requests=(Request(5),), origin=0, algorithm="READ",
            whole_tape=True,
        )
        assert estimate_schedule_seconds(
            tiny_model, schedule
        ) == pytest.approx(full_read_seconds(tiny))


class TestAgreementWithExecution:
    @pytest.mark.parametrize(
        "name", ["FIFO", "SORT", "SLTF", "SCAN", "WEAVE", "LOSS", "READ"]
    )
    def test_estimate_equals_measurement_same_model(
        self, full_model, rng, name
    ):
        # When the drive runs the very model the estimator used, the
        # two must agree to numerical precision: the validation
        # experiments rely on this (all Figure 8 error comes from the
        # *deviation* between models, never from the bookkeeping).
        batch = rng.choice(
            full_model.geometry.total_segments, 24, replace=False
        ).tolist()
        origin = int(rng.integers(0, full_model.geometry.total_segments))
        schedule = get_scheduler(name).schedule(full_model, origin, batch)
        drive = SimulatedDrive(full_model, initial_position=origin)
        result = execute_schedule(drive, schedule)
        assert result.total_seconds == pytest.approx(
            schedule.estimated_seconds, rel=1e-9
        )

    def test_estimator_is_model_agnostic(self, tiny, tiny_model):
        # Estimating with a different model than the scheduler used is
        # the wrong-key-points scenario; it must not raise.
        from repro.model import EvenOddPerturbation

        schedule = FifoScheduler().schedule(tiny_model, 0, [9, 2])
        other = EvenOddPerturbation(tiny_model, 4.0)
        assert estimate_schedule_seconds(other, schedule) > 0
