"""Schedule execution on a drive."""

import numpy as np
import pytest

from repro.drive import SimulatedDrive
from repro.scheduling import (
    ReadEntireTapeScheduler,
    SortScheduler,
    execute_schedule,
)


class TestExecute:
    def test_requires_matching_position(self, tiny_model):
        schedule = SortScheduler().schedule(tiny_model, 50, [9, 2])
        drive = SimulatedDrive(tiny_model, initial_position=0)
        with pytest.raises(ValueError):
            execute_schedule(drive, schedule)

    def test_decomposition_sums(self, tiny_model, rng):
        batch = rng.choice(
            tiny_model.geometry.total_segments, 12, replace=False
        ).tolist()
        schedule = SortScheduler().schedule(tiny_model, 0, batch)
        drive = SimulatedDrive(tiny_model)
        result = execute_schedule(drive, schedule)
        assert result.total_seconds == pytest.approx(
            result.locate_seconds + result.transfer_seconds
        )
        assert result.total_seconds == pytest.approx(drive.clock_seconds)

    def test_completions_monotone_and_bounded(self, tiny_model, rng):
        batch = rng.choice(
            tiny_model.geometry.total_segments, 12, replace=False
        ).tolist()
        schedule = SortScheduler().schedule(tiny_model, 0, batch)
        result = execute_schedule(SimulatedDrive(tiny_model), schedule)
        completions = result.completion_seconds
        assert completions.shape == (12,)
        assert (np.diff(completions) > 0).all()
        assert completions[-1] == pytest.approx(result.total_seconds)

    def test_seconds_per_request(self, tiny_model):
        schedule = SortScheduler().schedule(tiny_model, 0, [5, 80])
        result = execute_schedule(SimulatedDrive(tiny_model), schedule)
        assert result.seconds_per_request == pytest.approx(
            result.total_seconds / 2
        )
        assert result.request_count == 2

    def test_empty_execution_has_no_per_request_time(self):
        # Regression: total/max(1, n) used to report the full total
        # for an empty execution instead of failing loudly.
        from repro.exceptions import NoSamplesError
        from repro.scheduling import ExecutionResult

        result = ExecutionResult(
            total_seconds=12.0,
            locate_seconds=10.0,
            transfer_seconds=2.0,
            completion_seconds=np.empty(0, dtype=np.float64),
        )
        assert result.request_count == 0
        with pytest.raises(NoSamplesError, match="no requests"):
            result.seconds_per_request


class TestWholeTape:
    def test_completions_follow_stream_order(self, tiny_model, rng):
        batch = rng.choice(
            tiny_model.geometry.total_segments, 10, replace=False
        ).tolist()
        schedule = ReadEntireTapeScheduler().schedule(tiny_model, 0, batch)
        result = execute_schedule(SimulatedDrive(tiny_model), schedule)
        # Requests are in segment order, so completion times ascend
        # with the streaming read.
        assert (np.diff(result.completion_seconds) > 0).all()
        assert result.completion_seconds[-1] < result.total_seconds

    def test_rewinds_first_when_parked(self, tiny_model, tiny):
        schedule = ReadEntireTapeScheduler().schedule(
            tiny_model, tiny.total_segments // 2, [3]
        )
        drive = SimulatedDrive(
            tiny_model, initial_position=tiny.total_segments // 2
        )
        parked = execute_schedule(drive, schedule).total_seconds

        at_bot_schedule = ReadEntireTapeScheduler().schedule(
            tiny_model, 0, [3]
        )
        fresh = execute_schedule(
            SimulatedDrive(tiny_model), at_bot_schedule
        ).total_seconds
        assert parked > fresh
