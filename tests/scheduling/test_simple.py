"""FIFO, SORT and READ."""

import pytest

from repro.scheduling import (
    FifoScheduler,
    ReadEntireTapeScheduler,
    Request,
    SortScheduler,
    full_read_seconds,
)


class TestFifo:
    def test_preserves_order(self, tiny_model):
        batch = [9, 1, 5, 3]
        schedule = FifoScheduler().schedule(tiny_model, 0, batch)
        assert [r.segment for r in schedule] == batch

    def test_estimate_sums_sequential_locates(self, tiny_model):
        batch = [40, 10]
        schedule = FifoScheduler().schedule(tiny_model, 0, batch)
        expected = (
            tiny_model.locate_time(0, 40)
            + tiny_model.locate_time(41, 10)
        )
        assert schedule.estimated_seconds == pytest.approx(
            expected, abs=0.1
        )


class TestSort:
    def test_sorted_by_segment(self, tiny_model):
        schedule = SortScheduler().schedule(tiny_model, 0, [9, 1, 5])
        assert [r.segment for r in schedule] == [1, 5, 9]

    def test_duplicate_segments_by_length(self, tiny_model):
        batch = [Request(5, 3), Request(5, 1)]
        schedule = SortScheduler().schedule(tiny_model, 0, batch)
        assert [r.length for r in schedule] == [1, 3]


class TestRead:
    def test_whole_tape_flag_and_estimate(self, tiny_model, tiny):
        schedule = ReadEntireTapeScheduler().schedule(
            tiny_model, 0, [9, 1]
        )
        assert schedule.whole_tape
        assert schedule.estimated_seconds == pytest.approx(
            full_read_seconds(tiny)
        )

    def test_estimate_independent_of_batch_size(self, tiny_model):
        small = ReadEntireTapeScheduler().schedule(tiny_model, 0, [1])
        large = ReadEntireTapeScheduler().schedule(
            tiny_model, 0, list(range(50))
        )
        assert small.estimated_seconds == pytest.approx(
            large.estimated_seconds
        )

    def test_nonzero_origin_charges_rewind(self, tiny_model, tiny):
        at_bot = ReadEntireTapeScheduler().schedule(tiny_model, 0, [1])
        parked = ReadEntireTapeScheduler().schedule(
            tiny_model, tiny.total_segments // 2, [1]
        )
        assert parked.estimated_seconds > at_bot.estimated_seconds

    def test_requests_stream_in_segment_order(self, tiny_model):
        schedule = ReadEntireTapeScheduler().schedule(
            tiny_model, 0, [9, 1, 5]
        )
        assert [r.segment for r in schedule] == [1, 5, 9]
