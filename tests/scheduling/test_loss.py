"""LOSS: the max-regret greedy path algorithm."""

import numpy as np
import pytest

from repro.exceptions import SchedulingError
from repro.scheduling import (
    FifoScheduler,
    LossScheduler,
    RawLossScheduler,
    SltfScheduler,
    loss_path,
)


def path_matrix(weights):
    """Square matrix with +inf diagonal and +inf into node 0."""
    matrix = np.asarray(weights, dtype=np.float64)
    np.fill_diagonal(matrix, np.inf)
    matrix[:, 0] = np.inf
    return matrix


class TestLossPath:
    def test_trivial_sizes(self):
        assert loss_path(path_matrix([[0.0]])) == []
        assert loss_path(path_matrix([[0, 1], [9, 0]])) == [1]

    def test_forced_chain(self):
        # Only one finite continuation at each step.
        inf = np.inf
        matrix = path_matrix(
            [
                [inf, 1, inf, inf],
                [inf, inf, 1, inf],
                [inf, inf, inf, 1],
                [inf, inf, inf, inf],
            ]
        )
        assert loss_path(matrix) == [1, 2, 3]

    def test_visits_every_node_once(self, rng):
        for size in (3, 6, 12, 25):
            weights = rng.uniform(1.0, 100.0, size=(size, size))
            order = loss_path(path_matrix(weights))
            assert sorted(order) == list(range(1, size))

    def test_regret_beats_pure_greedy_trap(self):
        # Classic regret example: from 0, node 1 is nearest, but taking
        # it forces a huge edge later; LOSS avoids the trap.
        matrix = path_matrix(
            [
                [0.0, 1.0, 2.0, 50.0],
                [0.0, 0.0, 100.0, 100.0],
                [0.0, 1.5, 0.0, 3.0],
                [0.0, 1.0, 100.0, 0.0],
            ]
        )
        order = loss_path(matrix.copy())
        cost = _path_cost(matrix, order)
        greedy_cost = _path_cost(matrix, [1, 3, 2])  # nearest-first
        assert cost < greedy_cost

    def test_rejects_non_square(self):
        with pytest.raises(SchedulingError):
            loss_path(np.zeros((3, 4)))


def _path_cost(matrix, order):
    cost = matrix[0, order[0]]
    for a, b in zip(order, order[1:]):
        cost += matrix[a, b]
    return float(cost)


class TestLossScheduler:
    def test_valid_permutation(self, full_model, rng):
        batch = rng.choice(
            full_model.geometry.total_segments, 64, replace=False
        ).tolist()
        schedule = LossScheduler().schedule(full_model, 0, batch)
        assert sorted(r.segment for r in schedule) == sorted(batch)

    def test_beats_sltf_on_average(self, full_model, rng):
        # The paper's headline algorithmic claim.
        total = full_model.geometry.total_segments
        loss_sum = 0.0
        sltf_sum = 0.0
        for _ in range(8):
            batch = rng.choice(total, 96, replace=False).tolist()
            loss_sum += LossScheduler().schedule(
                full_model, 0, batch
            ).estimated_seconds
            sltf_sum += SltfScheduler().schedule(
                full_model, 0, batch
            ).estimated_seconds
        assert loss_sum < sltf_sum

    def test_far_better_than_fifo(self, full_model, rng):
        batch = rng.choice(
            full_model.geometry.total_segments, 96, replace=False
        ).tolist()
        loss = LossScheduler().schedule(full_model, 0, batch)
        fifo = FifoScheduler().schedule(full_model, 0, batch)
        assert loss.estimated_seconds < 0.6 * fifo.estimated_seconds

    def test_single_request(self, full_model):
        schedule = LossScheduler().schedule(full_model, 0, [1234])
        assert [r.segment for r in schedule] == [1234]

    def test_single_group_short_circuit(self, full_model):
        # All requests coalesce into one representative.
        batch = [1000, 1100, 1200]
        schedule = LossScheduler().schedule(full_model, 0, batch)
        assert [r.segment for r in schedule] == [1000, 1100, 1200]

    def test_raw_variant_matches_on_sparse_batches(self, full_model, rng):
        # With a huge threshold disabled, raw LOSS still produces a
        # valid, competitive schedule.
        batch = rng.choice(
            full_model.geometry.total_segments, 24, replace=False
        ).tolist()
        raw = RawLossScheduler().schedule(full_model, 0, batch)
        coalesced = LossScheduler().schedule(full_model, 0, batch)
        assert sorted(r.segment for r in raw) == sorted(batch)
        assert raw.estimated_seconds < 1.3 * coalesced.estimated_seconds

    def test_multi_segment_requests(self, full_model, rng):
        from repro.scheduling import Request

        batch = [
            Request(int(s), length=10)
            for s in rng.choice(
                full_model.geometry.total_segments - 10, 16, replace=False
            )
        ]
        schedule = LossScheduler().schedule(full_model, 0, batch)
        assert sorted(schedule.requests) == sorted(batch)
