"""Sparse-graph LOSS with contraction (the paper's future work)."""

import numpy as np

from repro.scheduling import (
    LossScheduler,
    SparseLossScheduler,
    loss_path_fragments,
    sparse_loss_order,
)


class TestLossPathFragments:
    def test_complete_matrix_gives_one_fragment(self, rng):
        n = 8
        matrix = np.full((n + 1, n + 1), np.inf)
        matrix[:, 1:] = rng.uniform(1, 50, size=(n + 1, n))
        fragments = loss_path_fragments(matrix)
        assert len(fragments) == 1
        assert fragments[0][0] == 0
        assert sorted(fragments[0][1:]) == list(range(1, n + 1))

    def test_disconnected_matrix_gives_pieces(self):
        inf = np.inf
        # Two islands: {0 -> 1} and {2 <-> 3}, no bridge.
        matrix = np.asarray(
            [
                [inf, 2.0, inf, inf],
                [inf, inf, inf, inf],
                [inf, inf, inf, 3.0],
                [inf, inf, 5.0, inf],
            ]
        )
        fragments = loss_path_fragments(matrix)
        assert [0, 1] in fragments
        # 2 and 3 form one fragment (one edge picked, cycle forbidden).
        assert any(
            sorted(fragment) == [2, 3]
            for fragment in fragments
            if fragment[0] != 0
        )

    def test_origin_fragment_first(self, rng):
        n = 5
        matrix = np.full((n + 1, n + 1), np.inf)
        matrix[:, 1:] = rng.uniform(1, 50, size=(n + 1, n))
        fragments = loss_path_fragments(matrix)
        assert fragments[0][0] == 0


class TestSparseLossOrder:
    def test_small_instances_match_dense_quality(self, rng):
        from repro.scheduling.loss import loss_path

        for n in (4, 9, 20):
            rect = rng.uniform(1, 100, size=(n + 1, n))
            order = sparse_loss_order(rect.copy())
            assert sorted(order) == list(range(n))

            square = np.full((n + 1, n + 1), np.inf)
            square[:, 1:] = rect
            dense_order = [i - 1 for i in loss_path(square)]

            def cost(visit):
                total = rect[0, visit[0]]
                for a, b in zip(visit, visit[1:]):
                    total += rect[a + 1, b]
                return total

            assert cost(order) < 1.6 * cost(dense_order)

    def test_empty(self):
        assert sparse_loss_order(np.zeros((1, 0))) == []


class TestSparseLossScheduler:
    def test_valid_permutation(self, full_model, rng):
        batch = rng.choice(
            full_model.geometry.total_segments, 128, replace=False
        ).tolist()
        schedule = SparseLossScheduler().schedule(full_model, 0, batch)
        assert sorted(r.segment for r in schedule) == sorted(batch)

    def test_quality_close_to_dense_loss(self, full_model, rng):
        total_sparse = 0.0
        total_dense = 0.0
        for _ in range(5):
            batch = rng.choice(
                full_model.geometry.total_segments, 96, replace=False
            ).tolist()
            total_sparse += SparseLossScheduler().schedule(
                full_model, 0, batch
            ).estimated_seconds
            total_dense += LossScheduler().schedule(
                full_model, 0, batch
            ).estimated_seconds
        assert total_sparse < 1.1 * total_dense

    def test_single_group(self, full_model):
        schedule = SparseLossScheduler().schedule(
            full_model, 0, [100, 200, 300]
        )
        assert [r.segment for r in schedule] == [100, 200, 300]

    def test_registered(self):
        from repro.scheduling import get_scheduler

        assert isinstance(
            get_scheduler("LOSS-sparse"), SparseLossScheduler
        )
