"""Scheduler base machinery: validation, registry, estimates."""

import pytest

from repro.exceptions import (
    EmptyBatchError,
    SchedulingError,
    SegmentOutOfRange,
)
from repro.scheduling import (
    Request,
    Scheduler,
    get_scheduler,
    scheduler_names,
)


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = scheduler_names()
        for required in (
            "READ", "FIFO", "OPT", "SORT", "SLTF", "SCAN", "WEAVE", "LOSS",
        ):
            assert required in names

    def test_unknown_name(self):
        with pytest.raises(SchedulingError):
            get_scheduler("NOPE")

    def test_factories_return_fresh_instances(self):
        assert get_scheduler("LOSS") is not get_scheduler("LOSS")


class TestValidation:
    def test_empty_batch_rejected(self, tiny_model):
        with pytest.raises(EmptyBatchError):
            get_scheduler("FIFO").schedule(tiny_model, 0, [])

    def test_origin_validated(self, tiny_model, tiny):
        with pytest.raises(SegmentOutOfRange):
            get_scheduler("FIFO").schedule(
                tiny_model, tiny.total_segments, [1]
            )

    def test_request_segments_validated(self, tiny_model, tiny):
        with pytest.raises(SegmentOutOfRange):
            get_scheduler("FIFO").schedule(
                tiny_model, 0, [tiny.total_segments]
            )

    def test_overrunning_request_rejected(self, tiny_model, tiny):
        request = Request(tiny.total_segments - 1, length=5)
        with pytest.raises(SchedulingError):
            get_scheduler("FIFO").schedule(tiny_model, 0, [request])


class TestContract:
    def test_estimate_filled_in(self, tiny_model):
        schedule = get_scheduler("SORT").schedule(tiny_model, 0, [9, 3])
        assert schedule.estimated_seconds is not None
        assert schedule.estimated_seconds > 0

    def test_non_permutation_caught(self, tiny_model):
        class Broken(Scheduler):
            name = "BROKEN"

            def _order(self, model, origin, requests):
                return requests[:-1]

        with pytest.raises(SchedulingError):
            Broken().schedule(tiny_model, 0, [1, 2, 3])

    def test_accepts_plain_integers(self, tiny_model):
        schedule = get_scheduler("FIFO").schedule(tiny_model, 0, [5, 2])
        assert [r.segment for r in schedule] == [5, 2]
