"""WEAVE: the fixed pattern and the scheduler built on it."""


from repro.scheduling import WeaveScheduler, weave_pattern
from repro.scheduling.weave import ANTI, CO, SAME, flip


class TestFlip:
    def test_flips_tape_ends(self):
        assert flip(0) == 1
        assert flip(1) == 0
        assert flip(12) == 13
        assert flip(13) == 12

    def test_identity_elsewhere(self):
        for section in range(2, 12):
            assert flip(section) == section


class TestPattern:
    def test_prefix_from_middle_forward(self):
        entries = list(weave_pattern(section=6, direction=1))
        assert entries[:7] == [
            (SAME, 6),
            (SAME, 7),
            (SAME, 8),
            (CO, 8),
            (ANTI, 5),
            (CO, 7),
            (ANTI, 4),
        ]

    def test_prefix_respects_direction(self):
        entries = list(weave_pattern(section=6, direction=-1))
        # In a reverse track "forward" is toward lower physical sections.
        assert entries[:3] == [(SAME, 6), (SAME, 5), (SAME, 4)]

    def test_no_duplicates(self):
        for section in range(14):
            for direction in (1, -1):
                entries = list(weave_pattern(section, direction))
                assert len(entries) == len(set(entries))

    def test_all_sections_in_range(self):
        for section in (0, 7, 13):
            for _, sec in weave_pattern(section, 1):
                assert 0 <= sec <= 13

    def test_nearby_before_far(self):
        # The same-track entries must appear in increasing distance.
        entries = list(weave_pattern(section=2, direction=1))
        same_track = [sec for cls, sec in entries if cls == SAME]
        ahead = [sec for sec in same_track if sec >= 2]
        assert ahead[:3] == [2, 3, 4]


class TestScheduler:
    def test_valid_permutation(self, full_model, rng):
        batch = rng.choice(
            full_model.geometry.total_segments, 120, replace=False
        ).tolist()
        schedule = WeaveScheduler().schedule(full_model, 0, batch)
        assert sorted(r.segment for r in schedule) == sorted(batch)

    def test_sections_consumed_whole_and_ascending(self, full_model, rng):
        geo = full_model.geometry
        batch = rng.choice(
            geo.total_segments, 120, replace=False
        ).tolist()
        schedule = WeaveScheduler().schedule(full_model, 0, batch)
        segments = schedule.segments()
        sections = geo.global_section_of(segments)
        seen = set()
        current = None
        for sid, segment in zip(sections.tolist(), segments.tolist()):
            if sid != current:
                assert sid not in seen  # sections never revisited
                seen.add(sid)
                current = sid

    def test_prefers_read_ahead_neighbour(self, full_model):
        # First weave entry: the section immediately following in the
        # same track.
        geo = full_model.geometry
        near = geo.segment_at(8, 6, 0)
        far = geo.segment_at(30, 13, 5)
        origin = geo.segment_at(8, 5, 2)
        schedule = WeaveScheduler().schedule(full_model, origin,
                                             [far, near])
        assert schedule.requests[0].segment == near

    def test_better_than_fifo_on_average(self, full_model, rng):
        from repro.scheduling import FifoScheduler

        total = full_model.geometry.total_segments
        weave_total = 0.0
        fifo_total = 0.0
        for _ in range(5):
            batch = rng.choice(total, 48, replace=False).tolist()
            weave_total += WeaveScheduler().schedule(
                full_model, 0, batch
            ).estimated_seconds
            fifo_total += FifoScheduler().schedule(
                full_model, 0, batch
            ).estimated_seconds
        assert weave_total < 0.8 * fifo_total

    def test_requires_no_locate_calls(self, full_tape, rng):
        # WEAVE's selling point: it never consults locate_time().
        class ExplodingModel:
            def __init__(self, geometry):
                self.geometry = geometry

            def locate_times(self, *args, **kwargs):
                raise AssertionError("WEAVE must not call locate_times")

            def pairwise_times(self, *args, **kwargs):
                raise AssertionError("WEAVE must not call pairwise_times")

            def times(self, sources, destinations):
                # Only the estimator (after ordering) may cost the
                # schedule.
                import repro.model as model_pkg

                real = model_pkg.LocateTimeModel(self.geometry)
                return real.times(sources, destinations)

            def locate_time(self, source, destination):
                raise AssertionError("WEAVE must not call locate_time")

        batch = rng.choice(
            full_tape.total_segments, 30, replace=False
        ).tolist()
        schedule = WeaveScheduler().schedule(
            ExplodingModel(full_tape), 0, batch
        )
        assert len(schedule) == 30
