"""SLTF variants: greediness, section fast path, coalescing."""

import numpy as np
import pytest

from repro.geometry import tiny_tape
from repro.model import LocateTimeModel
from repro.scheduling import (
    SltfCoalesceScheduler,
    SltfNaiveScheduler,
    SltfScheduler,
)


def random_batch(model, rng, size):
    return rng.choice(
        model.geometry.total_segments, size=size, replace=False
    ).tolist()


class TestGreediness:
    def test_first_pick_is_nearest(self, tiny_model, rng):
        batch = random_batch(tiny_model, rng, 20)
        schedule = SltfNaiveScheduler().schedule(tiny_model, 0, batch)
        first = schedule.requests[0].segment
        times = tiny_model.locate_times(0, np.asarray(batch))
        assert tiny_model.locate_time(0, first) == pytest.approx(
            float(times.min())
        )

    def test_beats_fifo_on_average(self, full_model, rng):
        total = full_model.geometry.total_segments
        wins = 0
        for _ in range(5):
            batch = rng.choice(total, size=32, replace=False).tolist()
            sltf = SltfScheduler().schedule(full_model, 0, batch)
            fifo_estimate = float(
                full_model.locate_times(0, np.asarray([batch[0]]))[0]
            )
            # Compare against the trivial in-order schedule's estimate.
            from repro.scheduling import FifoScheduler

            fifo = FifoScheduler().schedule(full_model, 0, batch)
            if sltf.estimated_seconds < fifo.estimated_seconds:
                wins += 1
            assert fifo_estimate >= 0
        assert wins == 5


class TestSectionFastPath:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_naive_estimate(self, seed):
        # The paper's two facts make the section algorithm equivalent
        # to the naive greedy; allow only tie-breaking differences by
        # comparing estimated times, not orders.
        tape = tiny_tape(seed=seed, tracks=6)
        model = LocateTimeModel(tape)
        rng = np.random.default_rng(seed)
        batch = rng.choice(
            tape.total_segments, size=40, replace=False
        ).tolist()
        fast = SltfScheduler().schedule(model, 0, batch)
        naive = SltfNaiveScheduler().schedule(model, 0, batch)
        assert fast.estimated_seconds == pytest.approx(
            naive.estimated_seconds, rel=1e-9
        )

    def test_consumes_sections_in_ascending_order(self, full_model, rng):
        geo = full_model.geometry
        batch = random_batch(full_model, rng, 64)
        schedule = SltfScheduler().schedule(full_model, 0, batch)
        segments = schedule.segments()
        sections = geo.global_section_of(segments)
        # Within every run of equal section ids, segments ascend.
        for i in range(1, len(segments)):
            if sections[i] == sections[i - 1]:
                assert segments[i] > segments[i - 1]

    def test_origin_section_leftovers_rescheduled(self, full_model):
        # Requests behind the origin inside its own section appear
        # later in the schedule, not first (the paper's footnote 2).
        geo = full_model.geometry
        layout = geo.track_layout(0).section_layout(5)
        origin = layout.first_segment + layout.size // 2
        behind = layout.first_segment + 1
        ahead = layout.first_segment + layout.size - 2
        schedule = SltfScheduler().schedule(
            full_model, origin, [behind, ahead]
        )
        assert [r.segment for r in schedule] == [ahead, behind]


class TestCoalesceVariant:
    def test_valid_permutation(self, full_model, rng):
        batch = random_batch(full_model, rng, 50)
        schedule = SltfCoalesceScheduler().schedule(full_model, 0, batch)
        assert sorted(r.segment for r in schedule) == sorted(batch)

    def test_groups_stay_contiguous(self, full_model, rng):
        threshold = 1410
        batch = random_batch(full_model, rng, 50)
        schedule = SltfCoalesceScheduler(threshold=threshold).schedule(
            full_model, 0, batch
        )
        segments = schedule.segments()
        # Whenever two consecutive scheduled segments are within the
        # threshold in the sorted order, they must also be adjacent in
        # the schedule (groups are never split).
        ordered = np.sort(np.asarray(batch))
        position = {int(s): i for i, s in enumerate(segments)}
        for a, b in zip(ordered, ordered[1:]):
            if b - a < threshold:
                assert abs(position[int(b)] - position[int(a)]) == 1

    def test_close_to_plain_sltf(self, full_model, rng):
        batch = random_batch(full_model, rng, 96)
        plain = SltfScheduler().schedule(full_model, 0, batch)
        coalesced = SltfCoalesceScheduler().schedule(full_model, 0, batch)
        assert coalesced.estimated_seconds < 1.35 * plain.estimated_seconds
