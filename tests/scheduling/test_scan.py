"""SCAN: the serpentine elevator."""

import numpy as np

from repro.scheduling import ScanScheduler


class TestPaperExample:
    def test_figure2_example(self, full_model):
        # Paper: requests at (track, section) = (16,2), (17,12), (18,3)
        # -> SORT takes two passes, SCAN reads (16,2), (18,3), (17,12)
        # in a single up-and-down sweep.
        geo = full_model.geometry
        a = geo.segment_at(16, 2, 0)
        b = geo.segment_at(17, 12, 0)
        c = geo.segment_at(18, 3, 0)
        schedule = ScanScheduler().schedule(full_model, 0, [a, b, c])
        assert [r.segment for r in schedule] == [a, c, b]


class TestPassStructure:
    def test_single_track_requests_ascend(self, full_model, rng):
        # All requests on one forward track: a single upward pass in
        # section order.
        geo = full_model.geometry
        layout = geo.track_layout(4)
        batch = [
            geo.segment_at(4, section, 3) for section in (1, 5, 9, 12)
        ]
        rng.shuffle(batch)
        schedule = ScanScheduler().schedule(full_model, 0, batch)
        assert [r.segment for r in schedule] == sorted(batch)
        assert layout.track == 4

    def test_within_section_ascending(self, full_model, rng):
        geo = full_model.geometry
        batch = rng.choice(
            geo.total_segments, size=200, replace=False
        ).tolist()
        schedule = ScanScheduler().schedule(full_model, 0, batch)
        segments = schedule.segments()
        sections = geo.global_section_of(segments)
        for i in range(1, len(segments)):
            if sections[i] == sections[i - 1]:
                assert segments[i] > segments[i - 1]

    def test_up_then_down_sections(self, full_model, rng):
        # Per pass: forward-track sections non-decreasing, then
        # reverse-track sections non-increasing.
        geo = full_model.geometry
        batch = rng.choice(
            geo.total_segments, size=150, replace=False
        ).tolist()
        schedule = ScanScheduler().schedule(full_model, 0, batch)
        segments = schedule.segments()
        tracks = geo.track_of(segments)
        sections = np.asarray(geo.section_of(segments))
        direction = np.where(tracks % 2 == 0, 1, -1)

        # Split into alternating up (forward tracks) / down (reverse)
        # phases and check monotonicity inside each phase.
        phase_sections: list[int] = []
        previous_direction = 0
        for sec, direct in zip(sections.tolist(), direction.tolist()):
            if direct != previous_direction and phase_sections:
                phase_sections = []
            if phase_sections:
                if direct > 0:
                    assert sec >= phase_sections[-1]
                else:
                    assert sec <= phase_sections[-1]
            phase_sections.append(sec)
            previous_direction = direct

    def test_one_track_per_section_per_pass(self, full_model):
        # Two forward tracks with requests in the same section: the
        # second track's bucket waits for the next pass.
        geo = full_model.geometry
        a = geo.segment_at(10, 4, 0)
        b = geo.segment_at(12, 4, 0)
        later = geo.segment_at(10, 6, 0)
        schedule = ScanScheduler().schedule(full_model, 0, [a, b, later])
        order = [r.segment for r in schedule]
        # Track 10 wins section 4 (lowest track number), the pass
        # continues to section 6, and track 12's bucket lands in pass 2.
        assert order == [a, later, b]
