"""Schedule value type."""

import numpy as np

from repro.scheduling import Request, Schedule


def make(requests, **kwargs):
    defaults = dict(origin=0, algorithm="TEST")
    defaults.update(kwargs)
    return Schedule(requests=tuple(requests), **defaults)


class TestSchedule:
    def test_iteration_and_len(self):
        schedule = make([Request(3), Request(1)])
        assert len(schedule) == 2
        assert [r.segment for r in schedule] == [3, 1]

    def test_segments_array(self):
        schedule = make([Request(3), Request(1)])
        np.testing.assert_array_equal(schedule.segments(), [3, 1])
        # Cached: same object on second call.
        assert schedule.segments() is schedule.segments()

    def test_permutation_check(self):
        schedule = make([Request(3), Request(1)])
        assert schedule.is_permutation_of([Request(1), Request(3)])
        assert not schedule.is_permutation_of([Request(1)])
        assert not schedule.is_permutation_of(
            [Request(1), Request(3), Request(3)]
        )

    def test_with_estimate(self):
        schedule = make([Request(3)])
        updated = schedule.with_estimate(42.0)
        assert updated.estimated_seconds == 42.0
        assert schedule.estimated_seconds is None
        assert updated.requests == schedule.requests
        assert updated.whole_tape == schedule.whole_tape
