"""Request types and batch helpers."""

import numpy as np
import pytest

from repro.exceptions import EmptyBatchError
from repro.scheduling import (
    Request,
    as_requests,
    request_lengths,
    request_segments,
)
from repro.scheduling.request import check_batch


class TestRequest:
    def test_defaults(self):
        request = Request(100)
        assert request.length == 1
        assert request.end_segment == 101

    def test_multi_segment(self):
        request = Request(100, length=32)
        assert request.end_segment == 132

    def test_validation(self):
        with pytest.raises(ValueError):
            Request(-1)
        with pytest.raises(ValueError):
            Request(0, length=0)

    def test_ordering(self):
        assert Request(5) < Request(9)
        assert sorted([Request(9), Request(5)])[0].segment == 5

    def test_hashable(self):
        assert len({Request(1), Request(1), Request(2)}) == 2


class TestHelpers:
    def test_as_requests_mixed(self):
        batch = as_requests([5, Request(9, 2), np.int64(3)])
        assert batch == (Request(5), Request(9, 2), Request(3))

    def test_segments_and_lengths_arrays(self):
        batch = (Request(5), Request(9, 2))
        np.testing.assert_array_equal(request_segments(batch), [5, 9])
        np.testing.assert_array_equal(request_lengths(batch), [1, 2])

    def test_check_batch(self):
        check_batch((Request(1),))
        with pytest.raises(EmptyBatchError):
            check_batch(())
