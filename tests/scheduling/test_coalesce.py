"""Request coalescing."""


from repro.scheduling import (
    Request,
    coalesce_by_section,
    coalesce_by_threshold,
    expand_groups,
)


def segments(groups):
    return [[r.segment for r in g.requests] for g in groups]


class TestThresholdCoalescing:
    def test_paper_rule(self):
        # Gap < T joins the group; gap >= T starts a new representative.
        batch = [Request(s) for s in (0, 5, 9, 100, 104, 300)]
        groups = coalesce_by_threshold(batch, threshold=10)
        assert segments(groups) == [[0, 5, 9], [100, 104], [300]]

    def test_exact_threshold_splits(self):
        batch = [Request(0), Request(10)]
        assert len(coalesce_by_threshold(batch, threshold=10)) == 2
        assert len(coalesce_by_threshold(batch, threshold=11)) == 1

    def test_input_order_irrelevant(self):
        shuffled = [Request(s) for s in (104, 0, 300, 9, 100, 5)]
        groups = coalesce_by_threshold(shuffled, threshold=10)
        assert segments(groups) == [[0, 5, 9], [100, 104], [300]]

    def test_chaining(self):
        # Coalescing is transitive along the sorted order: consecutive
        # small gaps chain into one long representative.
        batch = [Request(s) for s in range(0, 100, 9)]
        groups = coalesce_by_threshold(batch, threshold=10)
        assert len(groups) == 1

    def test_group_endpoints(self):
        groups = coalesce_by_threshold(
            [Request(5), Request(8, length=3)], threshold=10
        )
        group = groups[0]
        assert group.first_segment == 5
        assert group.out_segment == 11
        assert len(group) == 2


class TestSectionCoalescing:
    def test_same_section_groups(self, tiny):
        layout = tiny.track_layout(0).section_layout(3)
        inside = [
            Request(layout.first_segment),
            Request(layout.first_segment + 2),
        ]
        outside = [Request(layout.last_segment + 1)]
        groups = coalesce_by_section(tiny, inside + outside)
        assert len(groups) == 2
        assert len(groups[0]) == 2

    def test_every_group_is_single_section(self, tiny, rng):
        batch = [
            Request(int(s))
            for s in rng.choice(tiny.total_segments, 60, replace=False)
        ]
        for group in coalesce_by_section(tiny, batch):
            ids = {
                int(tiny.global_section_of(r.segment))
                for r in group.requests
            }
            assert len(ids) == 1


class TestExpand:
    def test_round_trip_multiset(self, rng):
        batch = [Request(int(s)) for s in rng.integers(0, 10_000, 50)]
        groups = coalesce_by_threshold(batch, threshold=500)
        assert sorted(expand_groups(groups)) == sorted(batch)

    def test_groups_internally_sorted(self, rng):
        batch = [Request(int(s)) for s in rng.integers(0, 10_000, 50)]
        for group in coalesce_by_threshold(batch, threshold=500):
            ordered = [r.segment for r in group.requests]
            assert ordered == sorted(ordered)


def test_empty_batch_gives_no_groups():
    assert coalesce_by_threshold([], threshold=10) == []
    assert expand_groups([]) == []
