"""The package's public surface."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.geometry",
            "repro.model",
            "repro.drive",
            "repro.scheduling",
            "repro.workload",
            "repro.online",
            "repro.cache",
            "repro.analysis",
            "repro.experiments",
        ],
    )
    def test_subpackage_all_resolve(self, module):
        package = importlib.import_module(module)
        for name in package.__all__:
            assert hasattr(package, name), f"{module}.{name}"

    def test_docstring_quickstart_runs(self, tiny, tiny_model):
        # The snippet in the package docstring, on a tiny tape.
        from repro import LossScheduler, SimulatedDrive, execute_schedule

        batch = [5, 42, 199, 310]
        schedule = LossScheduler().schedule(
            tiny_model, 0, batch
        )
        drive = SimulatedDrive(tiny_model)
        result = execute_schedule(drive, schedule)
        assert result.total_seconds > 0

    def test_exception_hierarchy(self):
        assert issubclass(repro.SchedulingError, repro.ReproError)
        assert issubclass(repro.SegmentOutOfRange, repro.GeometryError)
        assert issubclass(repro.BatchTooLarge, repro.SchedulingError)
        assert issubclass(repro.CacheError, repro.ReproError)
        assert issubclass(repro.NoSamplesError, repro.MetricsError)
        assert issubclass(repro.MetricsError, repro.ReproError)

    def test_cache_quickstart_runs(self, tiny):
        # The docs/CACHING.md composition snippet, on a tiny tape.
        from repro import (
            CachedTertiaryStorageSystem,
            GDSFPolicy,
            SegmentCache,
        )
        from repro.workload import TimedRequest

        system = CachedTertiaryStorageSystem(
            geometry=tiny,
            cache=SegmentCache(64, policy=GDSFPolicy()),
        )
        stats = system.run(
            [TimedRequest(0.0, 7), TimedRequest(9000.0, 7)]
        )
        assert stats.count == 2
        assert system.cache_stats.hits == 1
