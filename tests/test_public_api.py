"""The package's public surface."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.geometry",
            "repro.model",
            "repro.drive",
            "repro.scheduling",
            "repro.workload",
            "repro.online",
            "repro.library",
            "repro.cache",
            "repro.analysis",
            "repro.obs",
            "repro.api",
            "repro.experiments",
        ],
    )
    def test_subpackage_all_resolve(self, module):
        package = importlib.import_module(module)
        for name in package.__all__:
            assert hasattr(package, name), f"{module}.{name}"

    def test_docstring_quickstart_runs(self, tiny, tiny_model):
        # The snippet in the package docstring, on a tiny tape.
        from repro import LossScheduler, SimulatedDrive, execute_schedule

        batch = [5, 42, 199, 310]
        schedule = LossScheduler().schedule(
            tiny_model, 0, batch
        )
        drive = SimulatedDrive(tiny_model)
        result = execute_schedule(drive, schedule)
        assert result.total_seconds > 0

    def test_exception_hierarchy(self):
        assert issubclass(repro.SchedulingError, repro.ReproError)
        assert issubclass(repro.SegmentOutOfRange, repro.GeometryError)
        assert issubclass(repro.BatchTooLarge, repro.SchedulingError)
        assert issubclass(repro.CacheError, repro.ReproError)
        assert issubclass(repro.NoSamplesError, repro.MetricsError)
        assert issubclass(repro.MetricsError, repro.ReproError)

    def test_facade_covers_the_documented_surface(self):
        # docs/API.md promises these through the facade.
        from repro import api

        for name in (
            "EventBus", "TraceRecorder", "MetricsRegistry",
            "bind_standard_metrics", "summarize_events",
            "response_stats_from_events", "cache_stats_from_events",
            "write_events_jsonl", "read_events_jsonl",
            "TertiaryStorageSystem", "CachedTertiaryStorageSystem",
            "SimulatedDrive", "execute_schedule", "get_scheduler",
            "generate_tape", "LocateTimeModel", "SegmentCache",
            "BatchPolicy", "TapeLibrary", "result_to_rows",
            "write_result", "LinearizedModel", "LtspExactScheduler",
            "LtspRepairScheduler", "LtspSweepScheduler",
            "LtspGreedyScheduler", "exact_ltsp_order",
            "linear_deadhead_sections",
        ):
            assert name in api.__all__, name
            assert getattr(api, name) is not None

    def test_facade_names_are_canonical_objects(self):
        # The facade re-exports, never wraps.
        from repro import api
        from repro.obs import EventBus
        from repro.online import TertiaryStorageSystem

        assert api.EventBus is EventBus
        assert api.TertiaryStorageSystem is TertiaryStorageSystem

    def test_observability_quickstart_runs(self, tiny):
        # The docs/OBSERVABILITY.md hook-API snippet, on a tiny tape.
        from repro import api
        from repro.workload import TimedRequest

        bus = api.EventBus()
        recorder = api.TraceRecorder(bus)
        registry = api.bind_standard_metrics(bus)
        system = api.TertiaryStorageSystem(geometry=tiny, bus=bus)
        stats = system.run([TimedRequest(0.0, 7), TimedRequest(1.0, 80)])
        assert stats.count == 2
        assert recorder.summary().request_count == 2
        assert registry.histogram("request.response_seconds").count == 2

    def test_cache_quickstart_runs(self, tiny):
        # The docs/CACHING.md composition snippet, on a tiny tape.
        from repro import (
            CachedTertiaryStorageSystem,
            GDSFPolicy,
            SegmentCache,
        )
        from repro.workload import TimedRequest

        system = CachedTertiaryStorageSystem(
            geometry=tiny,
            cache=SegmentCache(64, policy=GDSFPolicy()),
        )
        stats = system.run(
            [TimedRequest(0.0, 7), TimedRequest(9000.0, 7)]
        )
        assert stats.count == 2
        assert system.cache_stats.hits == 1
