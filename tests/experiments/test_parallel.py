"""The parallel experiment engine: determinism, planning, progress.

The engine's contract is that the worker count is *not part of the
experiment definition*: ``workers=1`` and ``workers=N`` must produce
cell-for-cell bit-identical statistics.  These tests assert exact
``==`` on means, standard deviations, and counts — no tolerances.
"""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    cache_sim,
    figure10,
    figure9,
    run_per_locate,
)
from repro.experiments.parallel import (
    ChunkTask,
    SweepSpec,
    chunk_plan,
    execute_plan,
    resolve_workers,
    run_chunk,
)
from repro.obs import EventBus, SweepChunkCompleted


def _assert_cells_identical(first, second):
    assert set(first.points) == set(second.points)
    for key in first.points:
        a, b = first.points[key], second.points[key]
        assert a.total.count == b.total.count, key
        assert a.total.mean == b.total.mean, key
        assert a.total.std == b.total.std, key


class TestWorkerInvariance:
    """run_per_locate(workers=1) == run_per_locate(workers=4)."""

    @pytest.fixture(scope="class")
    def config(self):
        return ExperimentConfig(lengths=(2, 4, 8), scale="quick")

    def test_per_locate_cell_for_cell(self, config):
        serial = run_per_locate(
            config, origin_at_start=False,
            algorithms=("FIFO", "LOSS", "OPT"), workers=1,
        )
        parallel = run_per_locate(
            config, origin_at_start=False,
            algorithms=("FIFO", "LOSS", "OPT"), workers=4,
        )
        _assert_cells_identical(serial, parallel)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_every_worker_count_identical(self, config, workers):
        base = run_per_locate(
            config, origin_at_start=True, algorithms=("LOSS",),
            workers=1,
        )
        other = run_per_locate(
            config, origin_at_start=True, algorithms=("LOSS",),
            workers=workers,
        )
        _assert_cells_identical(base, other)

    def test_figure10_worker_invariant(self):
        config = ExperimentConfig(lengths=(4, 8), scale="quick")
        serial = figure10.run(config, workers=1)
        parallel = figure10.run(config, workers=2)
        assert set(serial.increase) == set(parallel.increase)
        for key in serial.increase:
            a, b = serial.increase[key], parallel.increase[key]
            assert (a.count, a.mean, a.std) == (b.count, b.mean, b.std)
        for key in serial.opt_increase:
            a = serial.opt_increase[key]
            b = parallel.opt_increase[key]
            assert (a.count, a.mean, a.std) == (b.count, b.mean, b.std)

    def test_validation_worker_invariant(self):
        config = ExperimentConfig(scale="quick", max_length=32)
        serial = figure9.run(config, workers=1)
        parallel = figure9.run(config, workers=2)
        assert [p.length for p in serial.points] == [
            p.length for p in parallel.points
        ]
        for a, b in zip(serial.points, parallel.points):
            assert a.percent_error.count == b.percent_error.count
            assert a.percent_error.mean == b.percent_error.mean
            assert a.percent_error.std == b.percent_error.std

    def test_cache_sim_worker_invariant(self):
        kwargs = dict(
            capacities=(40, 200),
            horizon_hours=0.5,
            hot_set=400,
        )
        config = ExperimentConfig(scale="quick")
        serial = cache_sim.run(config, workers=1, **kwargs)
        parallel = cache_sim.run(config, workers=2, **kwargs)
        assert serial.points == parallel.points
        assert serial.baseline_mean_seconds == parallel.baseline_mean_seconds


class TestSeedModes:
    def test_legacy_mode_rejects_workers(self):
        config = ExperimentConfig(
            lengths=(2,), scale="quick", seed_mode="legacy"
        )
        with pytest.raises(ExperimentError):
            run_per_locate(
                config, origin_at_start=False, algorithms=("FIFO",),
                workers=2,
            )
        with pytest.raises(ExperimentError):
            figure10.run(config, workers=2)
        with pytest.raises(ExperimentError):
            figure9.run(config, workers=2)

    def test_unknown_seed_mode_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(seed_mode="banana")

    def test_legacy_differs_from_per_trial_but_agrees_statistically(self):
        length = 8
        per_trial = run_per_locate(
            ExperimentConfig(lengths=(length,), scale="quick"),
            origin_at_start=False, algorithms=("FIFO",),
        ).point("FIFO", length)
        legacy = run_per_locate(
            ExperimentConfig(
                lengths=(length,), scale="quick", seed_mode="legacy"
            ),
            origin_at_start=False, algorithms=("FIFO",),
        ).point("FIFO", length)
        # Different streams -> different bits...
        assert per_trial.total.mean != legacy.total.mean
        # ...same distribution: FIFO's per-locate mean is the
        # random-to-random expectation (~72.4 s) either way.
        assert per_trial.per_locate_mean == pytest.approx(
            legacy.per_locate_mean, rel=0.10
        )


class TestChunkPlan:
    def test_boundaries_cover_trials_exactly(self):
        config = ExperimentConfig(lengths=(2, 16, 96), scale="quick")
        tasks = chunk_plan(config, config.effective_lengths, 25)
        for length in config.effective_lengths:
            own = [t for t in tasks if t.length == length]
            assert own[0].trial_start == 0
            assert own[-1].trial_stop == config.trials(length)
            for prev, cur in zip(own, own[1:]):
                assert prev.trial_stop == cur.trial_start
                assert cur.chunk_index == prev.chunk_index + 1

    def test_plan_is_worker_independent(self):
        # The merge tree is defined entirely by config + chunk size —
        # nothing about workers enters the plan.
        config = ExperimentConfig(lengths=(4, 8), scale="quick")
        assert chunk_plan(config, (4, 8)) == chunk_plan(config, (4, 8))

    def test_opt_budget_recorded(self):
        config = ExperimentConfig(lengths=(2, 12), scale="quick")
        tasks = chunk_plan(config, (2, 12), 25)
        by_length = {t.length: t.opt_budget for t in tasks}
        assert by_length[2] == config.opt_trials(2)
        assert by_length[12] == config.opt_trials(12)

    def test_invalid_chunk_size(self):
        config = ExperimentConfig(lengths=(2,), scale="quick")
        with pytest.raises(ExperimentError):
            chunk_plan(config, (2,), 0)

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ExperimentError):
            resolve_workers(-1)


class TestRunChunk:
    """The chunk function is pure in (spec, task)."""

    def test_same_inputs_same_outputs(self):
        spec = SweepSpec(
            tape_seed=1, workload_seed=0, origin_at_start=False,
            algorithms=("LOSS",),
        )
        task = ChunkTask(
            length=4, chunk_index=0, trial_start=0, trial_stop=10,
            opt_budget=10,
        )
        first = run_chunk(spec, task)["LOSS"][0]
        second = run_chunk(spec, task)["LOSS"][0]
        assert (first.count, first.mean, first.std) == (
            second.count, second.mean, second.std,
        )

    def test_disjoint_chunks_draw_disjoint_streams(self):
        spec = SweepSpec(
            tape_seed=1, workload_seed=0, origin_at_start=False,
            algorithms=("FIFO",),
        )
        first = run_chunk(
            spec,
            ChunkTask(length=4, chunk_index=0, trial_start=0,
                      trial_stop=5, opt_budget=0),
        )["FIFO"][0]
        second = run_chunk(
            spec,
            ChunkTask(length=4, chunk_index=1, trial_start=5,
                      trial_stop=10, opt_budget=0),
        )["FIFO"][0]
        assert first.count == second.count == 5
        assert first.mean != second.mean


class TestProgressEvents:
    def test_bus_sees_start_chunks_complete(self):
        bus = EventBus()
        events = bus.collect()
        config = ExperimentConfig(lengths=(2,), scale="quick")
        run_per_locate(
            config, origin_at_start=False, algorithms=("FIFO",),
            workers=1, bus=bus,
        )
        names = [event.name for event in events]
        assert names[0] == "experiment.start"
        assert names[-1] == "experiment.complete"
        chunks = [
            e for e in events if isinstance(e, SweepChunkCompleted)
        ]
        assert len(chunks) == names.count("experiment.chunk")
        assert chunks, "expected at least one chunk event"
        # Serial execution reports monotone progress over all tasks.
        done = [e.done_tasks for e in chunks]
        assert done == sorted(done)
        assert done[-1] == chunks[-1].total_tasks
        assert sum(e.chunk_trials for e in chunks) == config.trials(2)

    def test_parallel_run_reports_every_chunk(self):
        bus = EventBus()
        chunks = bus.collect("experiment.chunk")
        config = ExperimentConfig(lengths=(2, 4), scale="quick")
        run_per_locate(
            config, origin_at_start=False, algorithms=("FIFO",),
            workers=2, bus=bus,
        )
        total = {e.total_tasks for e in chunks}
        assert len(chunks) == total.pop()


class TestExecutePlanGeneric:
    def test_results_in_plan_order(self):
        spec = SweepSpec(
            tape_seed=1, workload_seed=0, origin_at_start=False,
            algorithms=("FIFO",),
        )
        config = ExperimentConfig(lengths=(2, 4), scale="quick")
        tasks = chunk_plan(config, (2, 4), 50)
        partials = execute_plan(spec, tasks, workers=1)
        assert len(partials) == len(tasks)
        for task, partial in zip(tasks, partials):
            expected = min(
                task.trials,
                max(0, task.opt_budget - task.trial_start),
            )
            del expected  # FIFO ignores the OPT budget
            assert partial["FIFO"][0].count == task.trials
