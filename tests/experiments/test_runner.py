"""The Figure 3 simulation loop."""

import pytest

from repro.experiments import ExperimentConfig, run_per_locate


@pytest.fixture(scope="module")
def small_result():
    config = ExperimentConfig(lengths=(2, 8, 12, 16), scale="quick")
    return run_per_locate(
        config,
        origin_at_start=False,
        algorithms=("FIFO", "LOSS", "OPT"),
    )


class TestRunner:
    def test_points_populated(self, small_result):
        for algorithm in ("FIFO", "LOSS"):
            for length in (2, 8, 12, 16):
                point = small_result.point(algorithm, length)
                assert point.total.count > 0

    def test_opt_respects_paper_range(self, small_result):
        assert small_result.point("OPT", 12).total.count > 0
        assert small_result.point("OPT", 16).total.count == 0

    def test_opt_never_worse_than_loss(self, small_result):
        # Same seeded batches feed both algorithms within a trial, and
        # OPT is exact, so its mean can exceed LOSS's only through its
        # smaller trial budget; at length 2 budgets coincide.
        opt = small_result.point("OPT", 2)
        loss = small_result.point("LOSS", 2)
        assert opt.per_locate_mean <= loss.per_locate_mean + 1e-9

    def test_rows_layout(self, small_result):
        rows = small_result.rows()
        assert len(rows) == 4
        assert rows[0][0] == 2
        assert rows[-1][1:][0] is not None  # FIFO cell at length 16
        assert rows[-1][3] is None  # OPT cell at length 16

    def test_per_locate_metrics(self, small_result):
        point = small_result.point("FIFO", 8)
        assert point.per_locate_mean == pytest.approx(
            point.total.mean / 8
        )
        assert point.locate_only_mean < point.total.mean


class TestDeterminism:
    def test_same_seed_same_results(self):
        config = ExperimentConfig(lengths=(4,), scale="quick")
        first = run_per_locate(
            config, origin_at_start=True, algorithms=("LOSS",)
        )
        second = run_per_locate(
            config, origin_at_start=True, algorithms=("LOSS",)
        )
        assert first.point("LOSS", 4).total.mean == pytest.approx(
            second.point("LOSS", 4).total.mean
        )

    def test_workload_seed_changes_results(self):
        base = ExperimentConfig(lengths=(4,), scale="quick")
        other = ExperimentConfig(
            lengths=(4,), scale="quick", workload_seed=99
        )
        first = run_per_locate(
            base, origin_at_start=True, algorithms=("LOSS",)
        )
        second = run_per_locate(
            other, origin_at_start=True, algorithms=("LOSS",)
        )
        assert first.point("LOSS", 4).total.mean != pytest.approx(
            second.point("LOSS", 4).total.mean
        )


class TestCpuMeasurement:
    def test_cpu_recorded_when_asked(self):
        config = ExperimentConfig(lengths=(4,), scale="quick")
        result = run_per_locate(
            config,
            origin_at_start=False,
            algorithms=("SORT",),
            measure_cpu=True,
        )
        point = result.point("SORT", 4)
        assert point.cpu.count == point.total.count
        assert point.cpu.mean >= 0.0
