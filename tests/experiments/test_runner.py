"""The Figure 3 simulation loop."""

import pytest

from repro.constants import SEGMENT_TRANSFER_SECONDS
from repro.experiments import ExperimentConfig, run_per_locate
from repro.experiments.runner import SeriesPoint


@pytest.fixture(scope="module")
def small_result():
    config = ExperimentConfig(lengths=(2, 8, 12, 16), scale="quick")
    return run_per_locate(
        config,
        origin_at_start=False,
        algorithms=("FIFO", "LOSS", "OPT"),
    )


class TestRunner:
    def test_points_populated(self, small_result):
        for algorithm in ("FIFO", "LOSS"):
            for length in (2, 8, 12, 16):
                point = small_result.point(algorithm, length)
                assert point.total.count > 0

    def test_opt_respects_paper_range(self, small_result):
        assert small_result.point("OPT", 12).total.count > 0
        assert small_result.point("OPT", 16).total.count == 0

    def test_opt_never_worse_than_loss(self, small_result):
        # Same seeded batches feed both algorithms within a trial, and
        # OPT is exact, so its mean can exceed LOSS's only through its
        # smaller trial budget; at length 2 budgets coincide.
        opt = small_result.point("OPT", 2)
        loss = small_result.point("LOSS", 2)
        assert opt.per_locate_mean <= loss.per_locate_mean + 1e-9

    def test_rows_layout(self, small_result):
        rows = small_result.rows()
        assert len(rows) == 4
        assert rows[0][0] == 2
        assert rows[-1][1:][0] is not None  # FIFO cell at length 16
        assert rows[-1][3] is None  # OPT cell at length 16

    def test_per_locate_metrics(self, small_result):
        point = small_result.point("FIFO", 8)
        assert point.per_locate_mean == pytest.approx(
            point.total.mean / 8
        )
        assert point.locate_only_mean < point.total.mean


class TestDeterminism:
    def test_same_seed_same_results(self):
        config = ExperimentConfig(lengths=(4,), scale="quick")
        first = run_per_locate(
            config, origin_at_start=True, algorithms=("LOSS",)
        )
        second = run_per_locate(
            config, origin_at_start=True, algorithms=("LOSS",)
        )
        assert first.point("LOSS", 4).total.mean == pytest.approx(
            second.point("LOSS", 4).total.mean
        )

    def test_workload_seed_changes_results(self):
        base = ExperimentConfig(lengths=(4,), scale="quick")
        other = ExperimentConfig(
            lengths=(4,), scale="quick", workload_seed=99
        )
        first = run_per_locate(
            base, origin_at_start=True, algorithms=("LOSS",)
        )
        second = run_per_locate(
            other, origin_at_start=True, algorithms=("LOSS",)
        )
        assert first.point("LOSS", 4).total.mean != pytest.approx(
            second.point("LOSS", 4).total.mean
        )


class TestCpuMeasurement:
    def test_cpu_recorded_when_asked(self):
        config = ExperimentConfig(lengths=(4,), scale="quick")
        result = run_per_locate(
            config,
            origin_at_start=False,
            algorithms=("SORT",),
            measure_cpu=True,
        )
        point = result.point("SORT", 4)
        assert point.cpu.count == point.total.count
        assert point.cpu.mean >= 0.0

    def test_cpu_recorded_on_parallel_path(self):
        # Wall-clock samples differ run-to-run, but the *counts* must
        # match the estimated-seconds cells under any worker fan-out.
        config = ExperimentConfig(lengths=(4, 8), scale="quick")
        result = run_per_locate(
            config,
            origin_at_start=False,
            algorithms=("SORT", "OPT"),
            measure_cpu=True,
            workers=2,
        )
        for length in (4, 8):
            point = result.point("SORT", length)
            assert point.cpu.count == point.total.count > 0
        opt = result.point("OPT", 8)
        assert opt.cpu.count == opt.total.count

    def test_cpu_off_by_default(self):
        config = ExperimentConfig(lengths=(4,), scale="quick")
        result = run_per_locate(
            config, origin_at_start=False, algorithms=("SORT",),
        )
        assert result.point("SORT", 4).cpu.count == 0


class TestSeriesPointBoundaries:
    """Documented edge behaviour of the per-cell metrics."""

    def test_length_one_per_locate_equals_total(self):
        point = SeriesPoint("FIFO", 1)
        point.total.extend([10.0, 20.0, 30.0])
        assert point.per_locate_mean == point.total.mean
        assert point.per_locate_std == point.total.std

    def test_per_locate_std_is_std_of_trial_mean(self):
        # std(total)/N — the spread of the batch-averaged time — not
        # the per-locate spread within a batch.
        point = SeriesPoint("LOSS", 4)
        point.total.extend([100.0, 120.0, 80.0])
        assert point.per_locate_std == pytest.approx(
            point.total.std / 4
        )

    def test_zero_variance_cell(self):
        point = SeriesPoint("SORT", 8)
        point.total.extend([64.0, 64.0, 64.0])
        assert point.per_locate_std == 0.0
        assert point.per_locate_mean == 8.0

    def test_single_trial_has_zero_std(self):
        point = SeriesPoint("SORT", 8)
        point.total.add(64.0)
        assert point.total.count == 1
        assert point.per_locate_std == 0.0

    def test_empty_cell(self):
        point = SeriesPoint("OPT", 96)
        assert point.total.count == 0
        assert point.per_locate_mean == 0.0
        assert point.per_locate_std == 0.0
        assert point.locate_only_mean == 0.0

    def test_locate_only_clamps_at_zero(self):
        # A mean below the fixed transfer estimate would subtract
        # negative; the documented clamp reads it as zero positioning.
        point = SeriesPoint("READ", 10)
        point.total.add(SEGMENT_TRANSFER_SECONDS)  # one segment's worth
        assert point.locate_only_mean == 0.0

    def test_locate_only_subtracts_transfer(self):
        point = SeriesPoint("LOSS", 2)
        point.total.add(100.0)
        assert point.locate_only_mean == pytest.approx(
            100.0 - 2 * SEGMENT_TRANSFER_SECONDS
        )
