"""The library durability chaos sweep (``repro chaos --library``).

One smoke-scale sweep (replicas 1 and 2, short horizon) is shared by
every test; the assertions are the CI gate's contract: every logical
read is accounted for at every redundancy level (``zero_lost``),
replication actually protects (``redundancy_protects``), and the
tabular protocol round-trips for export.
"""

import pytest

from repro.experiments import chaos
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def sweep():
    return chaos.run_library(ExperimentConfig(), smoke=True)


class TestLibraryChaosSweep:
    def test_gates_hold(self, sweep):
        assert sweep.zero_lost
        assert sweep.redundancy_protects
        assert sweep.ok

    def test_every_read_is_accounted_for(self, sweep):
        for point in sweep.points:
            assert point.reads > 0
            assert point.lost == 0
            assert (
                point.completed + point.failed_reads == point.reads
            )
            assert 0.0 <= point.durability <= 1.0

    def test_replicated_level_completes_everything(self, sweep):
        by_replicas = {p.replicas: p for p in sweep.points}
        assert set(by_replicas) == {1, 2}
        replicated = by_replicas[2]
        assert replicated.failed_reads == 0
        assert replicated.durability == 1.0
        # Faults were genuinely injected, so surviving them means the
        # replica fallback (or a lucky retry) did real work.
        assert replicated.faults_injected > 0

    def test_degraded_reads_trigger_repairs(self, sweep):
        replicated = next(
            p for p in sweep.points if p.replicas == 2
        )
        if replicated.degraded_reads:
            assert replicated.repairs_started > 0
            assert (
                replicated.repairs_completed
                + replicated.repairs_failed
                <= replicated.repairs_started
            )

    def test_same_workload_at_every_level(self, sweep):
        reads = {point.reads for point in sweep.points}
        assert len(reads) == 1

    def test_tabular_protocol(self, sweep):
        headers = sweep.headers()
        rows = sweep.rows()
        assert len(rows) == len(sweep.points)
        assert all(len(row) == len(headers) for row in rows)
        records = sweep.to_dict()
        assert records[0]["replicas"] == 1
        assert records[-1]["lost"] == 0

    def test_report_prints_table_and_verdict(self, sweep, capsys):
        chaos.report_library(sweep)
        out = capsys.readouterr().out
        assert "replicas" in out
        assert "zero silent loss" in out
