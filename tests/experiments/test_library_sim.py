"""The library-sim experiment driver."""

import pytest

from repro.experiments import ExperimentConfig, library_sim


@pytest.fixture(scope="module")
def smoke_result():
    return library_sim.run(
        ExperimentConfig(scale="quick"),
        cartridges=4,
        smoke=True,
        horizon_hours=0.1,
    )


class TestSmokeSweep:
    def test_smoke_grid_is_minimal(self, smoke_result):
        assert len(smoke_result.points) == 1
        point = smoke_result.points[0]
        assert point.drives == 2
        assert point.assignment == "affinity"

    def test_nothing_is_lost(self, smoke_result):
        assert smoke_result.all_complete
        for point in smoke_result.points:
            assert point.lost == 0
            assert point.failed == 0
            assert point.completed == point.requests

    def test_rows_match_headers(self, smoke_result):
        headers = smoke_result.headers()
        for row in smoke_result.rows():
            assert len(row) == len(headers)

    def test_to_dict_round_trips_the_rows(self, smoke_result):
        records = smoke_result.to_dict()
        assert len(records) == len(smoke_result.points)
        for record in records:
            assert record["lost"] == 0
            assert 0.0 <= record["drive util"] <= 1.0
            assert 0.0 <= record["robot occ"] <= 1.0

    def test_utilization_and_exchange_rates_are_sane(self, smoke_result):
        point = smoke_result.points[0]
        assert point.exchanges >= 1
        assert 0.0 < point.exchanges_per_request <= 1.0
        assert point.mean_response_seconds is not None
        assert (
            point.p50_response_seconds <= point.p99_response_seconds
        )


class TestSweepShape:
    def test_more_drives_strictly_reduce_mean_response(self):
        result = library_sim.run(
            ExperimentConfig(scale="quick"),
            drives=(1, 2),
            cartridges=4,
            assignments=("affinity",),
            horizon_hours=0.3,
            rates=(240.0,),
        )
        assert result.all_complete
        by_drives = {p.drives: p for p in result.points}
        assert (
            by_drives[2].mean_response_seconds
            < by_drives[1].mean_response_seconds
        )

    def test_grid_covers_drives_times_policies(self):
        result = library_sim.run(
            ExperimentConfig(scale="quick"),
            drives=(1, 2),
            cartridges=2,
            assignments=("affinity", "least-loaded"),
            horizon_hours=0.05,
        )
        combos = {(p.drives, p.assignment) for p in result.points}
        assert combos == {
            (1, "affinity"), (2, "affinity"),
            (1, "least-loaded"), (2, "least-loaded"),
        }


class TestPointEdgeCases:
    def test_empty_point_reports_none_percentiles(self):
        point = library_sim.LibraryPoint(
            drives=1, arms=1, cartridges=1, assignment="affinity",
            exchange="drain", rate_per_hour=1.0, requests=0,
            completed=0, failed=0, lost=0, batches=0, exchanges=0,
            mean_response_seconds=None, p50_response_seconds=None,
            p99_response_seconds=None, drive_utilization=0.0,
            robot_occupancy=0.0, max_arm_occupancy=0.0,
            mean_mount_wait_seconds=0.0,
        )
        assert point.exchanges_per_request == 0.0

    def test_report_prints_the_verdict(self, smoke_result, capsys):
        library_sim.report(smoke_result)
        out = capsys.readouterr().out
        assert "Multi-drive library sweep" in out
        assert "zero lost requests" in out

    def test_export_writes_json(self, smoke_result, tmp_path):
        from repro.experiments.export import write_result

        out = tmp_path / "library.json"
        written = write_result(smoke_result, str(out))
        assert out.exists()
        assert str(out) == str(written)
