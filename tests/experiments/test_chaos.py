"""The chaos (fault-injection sweep) experiment."""

import pytest

from repro.experiments import chaos
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def sweep():
    return chaos.run(
        ExperimentConfig(),
        fault_rates=(0.0, 0.2),
        rate_per_hour=120.0,
        horizon_hours=0.3,
    )


class TestChaosSweep:
    def test_no_requests_lost_at_any_rate(self, sweep):
        assert sweep.all_complete
        for point in sweep.points:
            assert point.completion_ratio == 1.0
            assert point.failed == 0
            assert point.completed == point.requests > 0

    def test_zero_rate_point_is_fault_free(self, sweep):
        clean = sweep.points[0]
        assert clean.fault_rate == 0.0
        assert clean.faults_injected == 0
        assert clean.retries == 0
        assert clean.requeues == 0

    def test_faulted_point_pays_in_time_not_requests(self, sweep):
        # The cost of faults shows up as retries and injected-fault
        # counts, never as lost requests.  (Mean response time is not
        # asserted to rise: faults shift batch boundaries, which at
        # this scale can move the mean either way.)
        clean, faulted = sweep.points
        assert faulted.faults_injected > 0
        assert faulted.retries > 0
        assert faulted.mean_response_seconds > 0
        assert faulted.completed == clean.completed == clean.requests

    def test_percentiles_ordered(self, sweep):
        for point in sweep.points:
            assert (
                point.p50_response_seconds
                <= point.p90_response_seconds
                <= point.p99_response_seconds
            )

    def test_tabular_protocol(self, sweep):
        headers = sweep.headers()
        rows = sweep.rows()
        assert len(rows) == 2
        assert all(len(row) == len(headers) for row in rows)
        records = sweep.to_dict()
        assert records[1]["fault rate"] == 0.2
        assert records[0]["completion ratio"] == 1.0

    def test_report_prints_table_and_verdict(self, sweep, capsys):
        chaos.report(sweep)
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "completion ratio 1.0" in out

    def test_zero_rate_matches_unhardened_system(self):
        from repro.geometry.generator import generate_tape
        from repro.online.batch_queue import BatchPolicy
        from repro.online.system import TertiaryStorageSystem
        from repro.workload.arrivals import PoissonArrivals

        config = ExperimentConfig()
        point = chaos.run_point(
            config, fault_rate=0.0, horizon_hours=0.3
        )
        tape = generate_tape(seed=config.tape_seed)
        plain = TertiaryStorageSystem(
            geometry=tape, policy=BatchPolicy(max_batch=32)
        )
        requests = PoissonArrivals(
            rate_per_hour=120.0,
            total_segments=tape.total_segments,
            seed=config.workload_seed,
        ).batch(0.3 * 3600.0)
        stats = plain.run(requests)
        assert point.completed == stats.count
        assert point.mean_response_seconds == pytest.approx(
            stats.mean_seconds
        )
