"""Streaming statistics."""

import numpy as np
import pytest

from repro.experiments import RunningStats


class TestRunningStats:
    def test_matches_numpy(self, rng):
        values = rng.normal(50.0, 12.0, 500)
        stats = RunningStats()
        stats.extend(values)
        assert stats.count == 500
        assert stats.mean == pytest.approx(float(values.mean()))
        assert stats.std == pytest.approx(
            float(values.std(ddof=1)), rel=1e-9
        )

    def test_small_counts(self):
        stats = RunningStats()
        assert stats.variance == 0.0
        assert stats.stderr == 0.0
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.std == 0.0

    def test_stderr(self, rng):
        values = rng.normal(0.0, 1.0, 100)
        stats = RunningStats()
        stats.extend(values)
        assert stats.stderr == pytest.approx(stats.std / 10.0)

    def test_merge_matches_pooled(self, rng):
        left_values = rng.normal(10.0, 2.0, 120)
        right_values = rng.normal(30.0, 5.0, 80)
        left = RunningStats()
        left.extend(left_values)
        right = RunningStats()
        right.extend(right_values)
        left.merge(right)

        pooled = np.concatenate((left_values, right_values))
        assert left.count == 200
        assert left.mean == pytest.approx(float(pooled.mean()))
        assert left.std == pytest.approx(
            float(pooled.std(ddof=1)), rel=1e-9
        )

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.add(4.0)
        stats.merge(RunningStats())
        assert stats.count == 1
        empty = RunningStats()
        empty.merge(stats)
        assert empty.mean == 4.0
