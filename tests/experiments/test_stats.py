"""Streaming statistics."""

import numpy as np
import pytest

from repro.experiments import RunningStats


class TestRunningStats:
    def test_matches_numpy(self, rng):
        values = rng.normal(50.0, 12.0, 500)
        stats = RunningStats()
        stats.extend(values)
        assert stats.count == 500
        assert stats.mean == pytest.approx(float(values.mean()))
        assert stats.std == pytest.approx(
            float(values.std(ddof=1)), rel=1e-9
        )

    def test_small_counts(self):
        stats = RunningStats()
        assert stats.variance == 0.0
        assert stats.stderr == 0.0
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.std == 0.0

    def test_stderr(self, rng):
        values = rng.normal(0.0, 1.0, 100)
        stats = RunningStats()
        stats.extend(values)
        assert stats.stderr == pytest.approx(stats.std / 10.0)

    def test_merge_matches_pooled(self, rng):
        left_values = rng.normal(10.0, 2.0, 120)
        right_values = rng.normal(30.0, 5.0, 80)
        left = RunningStats()
        left.extend(left_values)
        right = RunningStats()
        right.extend(right_values)
        left.merge(right)

        pooled = np.concatenate((left_values, right_values))
        assert left.count == 200
        assert left.mean == pytest.approx(float(pooled.mean()))
        assert left.std == pytest.approx(
            float(pooled.std(ddof=1)), rel=1e-9
        )

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.add(4.0)
        stats.merge(RunningStats())
        assert stats.count == 1
        empty = RunningStats()
        empty.merge(stats)
        assert empty.mean == 4.0


class TestMergeOrder:
    """Chunked merge vs sequential accumulation.

    The parallel engine splits a trial stream into chunks, accumulates
    each chunk independently, and merges the partials.  Two distinct
    guarantees are pinned here:

    * merging the chunks **in their stream order** reproduces sequential
      accumulation to within Chan-update rounding (and the engine's
      worker-count invariance rests on the merge order being fixed by
      the plan, never by scheduling — see
      ``tests/experiments/test_parallel.py`` for the exact-equality
      end-to-end checks);
    * merging under **permuted** chunk orders keeps ``count`` exact and
      mean/std equal to ~1e-12 relative — *not* bitwise, because
      floating-point addition is not associative, which is exactly why
      the engine fixes the order instead of merging as results arrive.
    """

    def _chunks(self, rng, sizes):
        values = rng.lognormal(3.0, 1.0, sum(sizes))
        chunks, start = [], 0
        for size in sizes:
            chunk = RunningStats()
            chunk.extend(values[start:start + size])
            chunks.append(chunk)
            start += size
        sequential = RunningStats()
        sequential.extend(values)
        return chunks, sequential

    def test_in_order_merge_matches_sequential(self, rng):
        chunks, sequential = self._chunks(rng, [25, 25, 25, 7])
        merged = RunningStats()
        for chunk in chunks:
            merged.merge(chunk)
        assert merged.count == sequential.count
        assert merged.mean == pytest.approx(sequential.mean, rel=1e-12)
        assert merged.std == pytest.approx(sequential.std, rel=1e-12)

    @pytest.mark.parametrize("permutation_seed", range(6))
    def test_permuted_merge_orders_agree(self, rng, permutation_seed):
        chunks, sequential = self._chunks(rng, [25, 25, 25, 25, 13, 1])
        order = np.random.default_rng(permutation_seed).permutation(
            len(chunks)
        )
        merged = RunningStats()
        for index in order:
            merged.merge(chunks[index])
        # Counts are integer arithmetic: exact under any order.
        assert merged.count == sequential.count
        # Moments are floats: equal only up to rounding under
        # reordering.
        assert merged.mean == pytest.approx(sequential.mean, rel=1e-12)
        assert merged.std == pytest.approx(sequential.std, rel=1e-12)

    def test_fixed_order_is_bit_stable(self, rng):
        """Same chunks, same order -> bitwise-identical accumulator."""
        chunks, _ = self._chunks(rng, [25, 25, 10])
        first = RunningStats()
        second = RunningStats()
        for chunk in chunks:
            first.merge(chunk)
            second.merge(chunk)
        assert (first.count, first.mean, first.std) == (
            second.count, second.mean, second.std,
        )

    def test_merge_single_chunk_is_copy(self):
        chunk = RunningStats()
        chunk.extend([1.0, 2.0, 4.0])
        merged = RunningStats()
        merged.merge(chunk)
        assert merged.count == chunk.count
        assert merged.mean == chunk.mean
        assert merged.std == chunk.std

    def test_merge_returns_self(self):
        stats = RunningStats()
        assert stats.merge(RunningStats()) is stats
