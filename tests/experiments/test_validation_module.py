"""The shared validation machinery (Figures 8/9 substrate)."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.validation import (
    ValidationResult,
    run_validation,
)
from repro.geometry import generate_tape
from repro.model import LocateTimeModel


@pytest.fixture(scope="module")
def tape():
    return generate_tape(seed=41)


class TestRunValidation:
    def test_structure(self, tape):
        result = run_validation(
            schedule_model=LocateTimeModel(tape),
            true_geometry=tape,
            config=ExperimentConfig(scale="quick"),
            lengths=(8, 32),
            trials=2,
            label="unit",
        )
        assert isinstance(result, ValidationResult)
        assert result.label == "unit"
        assert [p.length for p in result.points] == [8, 32]
        for point in result.points:
            assert point.percent_error.count == 2

    def test_max_length_filters(self, tape):
        result = run_validation(
            schedule_model=LocateTimeModel(tape),
            true_geometry=tape,
            config=ExperimentConfig(scale="quick", max_length=16),
            lengths=(8, 16, 32),
            trials=1,
        )
        assert [p.length for p in result.points] == [8, 16]

    def test_identical_models_zero_error_without_deviation(self, tape):
        # When the ground-truth deviations are disabled the estimate
        # must equal the measurement exactly.
        result = run_validation(
            schedule_model=LocateTimeModel(tape),
            true_geometry=tape,
            config=ExperimentConfig(scale="quick"),
            lengths=(16,),
            trials=1,
        )
        # The default ground-truth drive deviates slightly; errors are
        # small but nonzero.
        assert 0.0 < abs(result.points[0].mean) < 3.0

    def test_rows(self, tape):
        result = run_validation(
            schedule_model=LocateTimeModel(tape),
            true_geometry=tape,
            lengths=(8,),
            trials=2,
        )
        rows = result.rows()
        assert len(rows) == 1
        assert rows[0][0] == 8
