"""Optimality-gap experiment."""

import pytest

from repro.experiments import ExperimentConfig, optimality


@pytest.fixture(scope="module")
def result():
    return optimality.run(
        ExperimentConfig(scale="quick"),
        algorithms=("OPT", "LOSS", "SLTF", "FIFO"),
        lengths=(8, 48),
        trials=4,
    )


class TestOptimalityExperiment:
    def test_gaps_nonnegative(self, result):
        for stats in result.gaps.values():
            assert stats.mean >= 0.0

    def test_algorithm_ranking(self, result):
        # Scheduled algorithms sit far below FIFO everywhere; LOSS
        # beats SLTF at the batch sizes it is recommended for (tiny
        # batches at few trials can go either way between greedy
        # heuristics).
        for length in result.lengths:
            loss = result.gaps[("LOSS", length)].mean
            fifo = result.gaps[("FIFO", length)].mean
            assert loss < fifo / 2
        assert (
            result.gaps[("LOSS", 48)].mean
            < result.gaps[("SLTF", 48)].mean
        )

    def test_opt_bounds_the_bound(self, result):
        # At small N, OPT's own gap measures how loose the relaxation
        # is; every heuristic's *true* distance from optimal is its
        # gap minus roughly that.
        opt_gap = result.gaps[("OPT", 8)].mean
        loss_gap = result.gaps[("LOSS", 8)].mean
        assert opt_gap <= loss_gap + 1e-9
        assert opt_gap < 60.0

    def test_opt_skipped_beyond_range(self, result):
        assert ("OPT", 48) not in result.gaps

    def test_rows_and_report(self, result, capsys):
        rows = result.rows()
        assert len(rows) == 2
        assert rows[1][1] is None  # OPT cell at 48
        optimality.report(result)
        assert "lower bound" in capsys.readouterr().out

    def test_frontier_absent_by_default(self, result):
        assert result.frontier is None


@pytest.fixture(scope="module")
def frontier():
    return optimality.run_frontier(
        ExperimentConfig(scale="quick"),
        algorithms=(
            "OPT", "LOSS", "SLTF",
            "LTSP-exact", "LTSP-repair", "LTSP-sweep", "LTSP-greedy",
        ),
        lengths=(8, 48, 192),
        trials=2,
    )


class TestFrontier:
    def test_gaps_nonnegative(self, frontier):
        # The exact linear optimum is a true lower bound: no strategy
        # may land below it, at any batch size.
        for stats in frontier.gaps.values():
            assert stats.mean >= -1e-9

    def test_exact_gap_is_zero(self, frontier):
        for length in frontier.lengths:
            assert frontier.gaps[
                ("LTSP-exact", length)
            ].mean == pytest.approx(0.0, abs=1e-9)

    def test_sweep_within_its_ratio(self, frontier):
        # 3-approximation on total linear travel; in practice the
        # sweep hugs the frontier.
        for length in frontier.lengths:
            assert frontier.gaps[("LTSP-sweep", length)].mean <= 200.0

    def test_opt_skipped_past_held_karp_ceiling(self, frontier):
        assert ("OPT", 8) in frontier.gaps
        assert ("OPT", 48) not in frontier.gaps
        assert ("OPT", 192) not in frontier.gaps

    def test_bachmat_prediction_tracks_the_frontier_at_scale(
        self, frontier
    ):
        # The asymptote is a large-N statement: at N = 192 it should
        # land within ~15% of the measured exact optimum.
        exact = frontier.exact_seconds[192].mean
        predicted = frontier.bachmat_seconds[192]
        assert abs(predicted - exact) / exact < 0.15

    def test_rows_shape_and_report(self, frontier, capsys):
        rows = frontier.rows()
        assert len(rows) == len(frontier.lengths)
        width = 3 + len(frontier.algorithms)
        assert all(len(row) == width for row in rows)
        optimality.report_frontier(frontier)
        out = capsys.readouterr().out
        assert "LTSP frontier" in out

    def test_attached_by_run_flag(self):
        result = optimality.run(
            ExperimentConfig(scale="quick"),
            algorithms=("LOSS",),
            lengths=(8,),
            trials=1,
            frontier=True,
            frontier_algorithms=("LTSP-exact", "LTSP-sweep"),
            frontier_lengths=(8, 16),
            frontier_trials=1,
        )
        assert result.frontier is not None
        assert result.frontier.lengths == (8, 16)
        records = result.frontier.to_dict()
        assert records[0]["length"] == 8
        assert "bachmat_seconds" in records[0]
