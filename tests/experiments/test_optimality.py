"""Optimality-gap experiment."""

import pytest

from repro.experiments import ExperimentConfig, optimality


@pytest.fixture(scope="module")
def result():
    return optimality.run(
        ExperimentConfig(scale="quick"),
        algorithms=("OPT", "LOSS", "SLTF", "FIFO"),
        lengths=(8, 48),
        trials=4,
    )


class TestOptimalityExperiment:
    def test_gaps_nonnegative(self, result):
        for stats in result.gaps.values():
            assert stats.mean >= 0.0

    def test_algorithm_ranking(self, result):
        # Scheduled algorithms sit far below FIFO everywhere; LOSS
        # beats SLTF at the batch sizes it is recommended for (tiny
        # batches at few trials can go either way between greedy
        # heuristics).
        for length in result.lengths:
            loss = result.gaps[("LOSS", length)].mean
            fifo = result.gaps[("FIFO", length)].mean
            assert loss < fifo / 2
        assert (
            result.gaps[("LOSS", 48)].mean
            < result.gaps[("SLTF", 48)].mean
        )

    def test_opt_bounds_the_bound(self, result):
        # At small N, OPT's own gap measures how loose the relaxation
        # is; every heuristic's *true* distance from optimal is its
        # gap minus roughly that.
        opt_gap = result.gaps[("OPT", 8)].mean
        loss_gap = result.gaps[("LOSS", 8)].mean
        assert opt_gap <= loss_gap + 1e-9
        assert opt_gap < 60.0

    def test_opt_skipped_beyond_range(self, result):
        assert ("OPT", 48) not in result.gaps

    def test_rows_and_report(self, result, capsys):
        rows = result.rows()
        assert len(rows) == 2
        assert rows[1][1] is None  # OPT cell at 48
        optimality.report(result)
        assert "lower bound" in capsys.readouterr().out
