"""The instrumented trace experiment driver (`python -m repro trace`)."""

import pytest

from repro.experiments import trace_run
from repro.experiments.config import ExperimentConfig
from repro.experiments.export import result_to_rows, write_result
from repro.obs import read_events_jsonl


@pytest.fixture(scope="module")
def result():
    # Short horizon: ~24 Poisson arrivals on the full cartridge.
    return trace_run.run(
        ExperimentConfig(scale="quick"),
        rate_per_hour=120.0,
        horizon_hours=0.2,
        max_batch=16,
    )


class TestTraceRun:
    def test_smoke_invariants_hold(self, result):
        assert result.phases_reconcile
        assert result.worst_phase_error_seconds <= (
            trace_run.PHASE_TOLERANCE_SECONDS
        )
        assert result.mean_matches
        assert result.ok

    def test_summary_matches_system(self, result):
        assert result.summary.request_count == result.system.stats.count
        assert result.summary.batch_count == len(result.system.batches)
        assert result.summary.mean_response_seconds == pytest.approx(
            result.system.stats.mean_seconds, rel=1e-12
        )

    def test_registry_populated(self, result):
        registry = result.registry
        assert registry.histogram(
            "request.response_seconds"
        ).count == result.system.stats.count
        assert registry.histogram("batch.size").count == len(
            result.system.batches
        )

    def test_tabular_protocol_and_export(self, result, tmp_path):
        rows = result_to_rows(result)
        assert rows == result.to_dict()
        metrics = [record["metric"] for record in rows]
        assert "phases reconcile" in metrics
        assert "trace mean == stats mean" in metrics
        out = write_result(result, tmp_path / "trace.json")
        assert out.exists()

    def test_report_prints_verification(self, result, capsys):
        trace_run.report(result)
        out = capsys.readouterr().out
        assert "phases reconcile" in out
        assert "trace mean" in out

    def test_jsonl_export_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        result = trace_run.run(
            ExperimentConfig(scale="quick"),
            rate_per_hour=120.0,
            horizon_hours=0.1,
            max_batch=8,
            trace_jsonl=str(path),
        )
        events = read_events_jsonl(path)
        assert events == result.recorder.events

    def test_smoke_mode_passes_on_healthy_run(self, capsys):
        result = trace_run.main(
            ExperimentConfig(scale="quick"),
            rate_per_hour=120.0,
            horizon_hours=0.1,
            max_batch=8,
            smoke=True,
        )
        assert result.ok
        capsys.readouterr()

    def test_smoke_mode_fails_on_broken_invariant(
        self, result, capsys, monkeypatch
    ):
        import dataclasses

        broken = dataclasses.replace(result, mean_matches=False)
        monkeypatch.setattr(
            trace_run, "run", lambda *args, **kwargs: broken
        )
        with pytest.raises(SystemExit, match="smoke check failed"):
            trace_run.main(smoke=True)
        capsys.readouterr()
