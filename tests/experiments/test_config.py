"""Experiment configuration."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    PAPER_SCHEDULE_LENGTHS,
    paper_trials,
    quick_trials,
)


class TestGrid:
    def test_paper_grid(self):
        assert PAPER_SCHEDULE_LENGTHS[0] == 1
        assert PAPER_SCHEDULE_LENGTHS[-1] == 2048
        assert 1536 in PAPER_SCHEDULE_LENGTHS

    def test_truncation(self):
        config = ExperimentConfig(max_length=64)
        assert config.effective_lengths[-1] == 64
        assert all(n <= 64 for n in config.effective_lengths)

    def test_no_truncation_by_default(self):
        assert ExperimentConfig().effective_lengths == (
            PAPER_SCHEDULE_LENGTHS
        )


class TestTrialTables:
    def test_paper_counts(self):
        assert paper_trials(1) == 100_000
        assert paper_trials(192) == 100_000
        assert paper_trials(256) == 25_000
        assert paper_trials(2048) == 400

    def test_quick_counts_decrease(self):
        assert quick_trials(1) >= quick_trials(64) >= quick_trials(2048)
        assert quick_trials(2048) >= 3

    def test_scales(self):
        quick = ExperimentConfig(scale="quick")
        paper = ExperimentConfig(scale="paper")
        full = ExperimentConfig(scale="full")
        for length in (1, 64, 2048):
            assert quick.trials(length) <= full.trials(length)
            assert full.trials(length) <= paper.trials(length)

    def test_opt_budget_paper(self):
        paper = ExperimentConfig(scale="paper")
        assert paper.opt_trials(10) == 10_000
        assert paper.opt_trials(12) == 100

    def test_opt_budget_quick_is_capped(self):
        quick = ExperimentConfig(scale="quick")
        assert quick.opt_trials(12) <= 10
        assert quick.opt_trials(1) == quick.trials(1)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(scale="enormous")
