"""The cache-sim experiment driver."""

import pytest

from repro.experiments import cache_sim
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def result():
    # A short but statistically meaningful run: 1 simulated hour at
    # 240 req/h over a 1000-segment hot set.
    return cache_sim.run(
        ExperimentConfig(scale="quick"),
        capacities=(10, 50, 500),
        hot_set=1_000,
        rate_per_hour=240.0,
        horizon_hours=1.0,
    )


class TestCacheSim:
    def test_sweep_shape(self, result):
        assert len(result.points) == 3
        assert [p.capacity_segments for p in result.points] == [
            10, 50, 500,
        ]
        assert result.request_count > 0

    def test_cache_at_5_percent_beats_baseline(self, result):
        # The acceptance criterion: capacity >= 5% of the hot set ->
        # mean response strictly below the cache-off baseline.
        point = result.points[1]  # 50 / 1000 = 5%
        assert point.mean_seconds < result.baseline_mean_seconds
        assert point.hit_rate > 0.0

    def test_rows_include_baseline_first(self, result):
        rows = result.rows()
        assert len(rows) == 4
        assert rows[0][0] == 0
        assert rows[0][3] == pytest.approx(
            result.baseline_mean_seconds / 60.0
        )

    def test_report_prints_table(self, result, capsys):
        cache_sim.report(result)
        out = capsys.readouterr().out
        assert "Cache-sim" in out
        assert "hit %" in out

    def test_default_capacities_scale_with_hot_set(self):
        capacities = tuple(
            max(1, int(round(f * 200)))
            for f in cache_sim.DEFAULT_CAPACITY_FRACTIONS
        )
        assert capacities == (2, 10, 40, 100)
