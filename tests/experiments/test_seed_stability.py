"""Seed-stability replication (Section 5)."""

import pytest

from repro.experiments import ExperimentConfig, seed_stability


@pytest.fixture(scope="module")
def result():
    return seed_stability.run(
        ExperimentConfig(scale="quick"), seeds=(0, 1, 2)
    )


class TestSeedStability:
    def test_all_cells_populated(self, result):
        for algorithm in result.algorithms:
            for length in result.lengths:
                assert result.means[(algorithm, length)].shape == (3,)

    def test_spread_well_below_algorithm_separation(self, result):
        # The paper's point: the reported differences between
        # algorithms are not seed artifacts.  FIFO vs LOSS differ by
        # >100%; seed spread at quick scale stays below 10%.
        for length in result.lengths:
            fifo = result.means[("FIFO", length)].mean()
            loss = result.means[("LOSS", length)].mean()
            gap = (fifo - loss) / loss
            for algorithm in result.algorithms:
                assert result.relative_spread(algorithm, length) < gap

    def test_spreads_are_small(self, result):
        for algorithm in result.algorithms:
            for length in result.lengths:
                assert result.relative_spread(algorithm, length) < 0.10

    def test_rows_and_report(self, result, capsys):
        rows = result.rows()
        assert len(rows) == len(result.lengths)
        seed_stability.report(result)
        assert "spread" in capsys.readouterr().out

    def test_separation_metric(self, result):
        for length in result.lengths:
            assert result.separation(length) >= 0.0
