"""Result export."""

import csv
import json

import pytest

from repro.experiments import ExperimentConfig, run_per_locate
from repro.experiments.export import (
    per_locate_to_rows,
    result_to_rows,
    validation_to_rows,
    write_csv,
    write_json,
    write_result,
)


@pytest.fixture(scope="module")
def per_locate():
    return run_per_locate(
        ExperimentConfig(lengths=(4, 16), scale="quick"),
        origin_at_start=False,
        algorithms=("FIFO", "OPT"),
    )


class TestFlattening:
    def test_per_locate_records(self, per_locate):
        records = per_locate_to_rows(per_locate)
        # FIFO at both lengths, OPT at both (4 and 16 <= 12? 16 > 12 so
        # OPT skipped there): 3 records.
        algorithms = {(r["algorithm"], r["length"]) for r in records}
        assert ("FIFO", 4) in algorithms
        assert ("FIFO", 16) in algorithms
        assert ("OPT", 4) in algorithms
        assert ("OPT", 16) not in algorithms
        for record in records:
            assert record["seconds_per_locate"] > 0
            assert record["trials"] > 0

    def test_validation_records(self):
        from repro.experiments import figure8

        result = figure8.run(
            ExperimentConfig(scale="quick", max_length=16)
        )
        records = validation_to_rows(result)
        assert all(r["label"] == "figure8" for r in records)
        assert {r["length"] for r in records} == {8, 16}

    def test_generic_rows_fallback(self):
        class FakeResult:
            def rows(self):
                return [[1, 2.5], [2, 3.5]]

        records = result_to_rows(FakeResult())
        assert records == [
            {"col0": 1, "col1": 2.5},
            {"col0": 2, "col1": 3.5},
        ]

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            result_to_rows(object())


class TestWriting:
    def test_csv_round_trip(self, per_locate, tmp_path):
        path = write_csv(per_locate, tmp_path / "fig4.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert float(rows[0]["seconds_per_locate"]) > 0

    def test_json_round_trip(self, per_locate, tmp_path):
        path = write_json(per_locate, tmp_path / "fig4.json")
        records = json.loads(path.read_text())
        assert len(records) == 3

    def test_dispatch_by_extension(self, per_locate, tmp_path):
        assert write_result(
            per_locate, tmp_path / "a.csv"
        ).suffix == ".csv"
        assert write_result(
            per_locate, tmp_path / "a.json"
        ).suffix == ".json"
        with pytest.raises(ValueError):
            write_result(per_locate, tmp_path / "a.xlsx")


class TestCliIntegration:
    def test_out_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "result.csv"
        assert main(
            ["figure4", "--max-length", "2", "--out", str(out)]
        ) == 0
        assert out.exists()
        assert "exported" in capsys.readouterr().out

    def test_out_with_all_rejected(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["all", "--out", str(tmp_path / "x.csv")])
