"""Golden-regression harness for the figure experiments.

Small-config Figure 4, Figure 5, and Figure 7 outputs are frozen as
JSON fixtures under ``tests/experiments/golden/``.  The comparison is
**exact**: the simulation is deterministic given the seeds, JSON
round-trips IEEE-754 doubles losslessly, so any bit change in the
pipeline — workload draws, scheduling, the locate model, the
statistics — shows up as a diff, not as a tolerance judgement call.

To update the fixtures after an *intentional* output change::

    PYTHONPATH=src python -m pytest tests/experiments/test_golden.py \
        --regen-golden

The regenerating run rewrites the files and then performs the same
comparison against what it wrote, so it cannot silently freeze a
non-reproducible result.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentConfig,
    figure4,
    figure5,
    figure7,
    optimality,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Reduced grids that still cross several trial-count bands.
_CONFIG = ExperimentConfig(lengths=(1, 2, 4, 8, 16), scale="quick")

#: The frozen experiments: name -> zero-argument runner.
GOLDEN_RUNS = {
    "figure4": lambda: figure4.run(
        _CONFIG, algorithms=("FIFO", "SORT", "LOSS", "OPT")
    ),
    "figure5": lambda: figure5.run(
        _CONFIG, algorithms=("FIFO", "SORT", "LOSS", "OPT")
    ),
    "figure7": lambda: figure7.run(_CONFIG),
    "optimality": lambda: optimality.run(
        _CONFIG,
        algorithms=("OPT", "LOSS", "SLTF", "SCAN"),
        lengths=(8, 12, 48),
        trials=2,
    ),
    "optimality_frontier": lambda: optimality.run_frontier(
        _CONFIG,
        lengths=(8, 16, 48, 96),
        trials=2,
    ),
}


def _records(result) -> list[dict]:
    """Canonical JSON-safe records: a json round-trip of to_dict()."""
    return json.loads(json.dumps(result.to_dict()))


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_golden(name, regen_golden):
    """The experiment's records match the frozen fixture exactly."""
    path = GOLDEN_DIR / f"{name}.json"
    records = _records(GOLDEN_RUNS[name]())
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(records, indent=1) + "\n")
    if not path.exists():
        pytest.fail(
            f"golden fixture {path} is missing; generate it with "
            "pytest tests/experiments/test_golden.py --regen-golden"
        )
    frozen = json.loads(path.read_text())
    assert records == frozen, (
        f"{name} output drifted from its golden fixture; if the "
        "change is intentional, rerun with --regen-golden"
    )


def test_golden_is_workers_invariant(regen_golden):
    """The frozen figure4 fixture is reproduced by the parallel path.

    This pins the engine's bit-identity guarantee to the *frozen*
    statistics, not merely to a same-process serial/parallel pair.
    """
    if regen_golden:
        pytest.skip("fixture being regenerated")
    path = GOLDEN_DIR / "figure4.json"
    frozen = json.loads(path.read_text())
    records = _records(
        figure4.run(
            _CONFIG,
            algorithms=("FIFO", "SORT", "LOSS", "OPT"),
            workers=2,
        )
    )
    assert records == frozen
