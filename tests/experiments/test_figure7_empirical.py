"""Empirical Figure 7 cross-check."""

import pytest

from repro.experiments import ExperimentConfig, figure7_empirical


@pytest.fixture(scope="module")
def result():
    return figure7_empirical.run(
        ExperimentConfig(scale="quick"),
        lengths=(10, 96),
        transfer_mb=(1.0, 30.0),
        trials=2,
    )


class TestFigure7Empirical:
    def test_algebra_accurate_in_figure7_regime(self, result):
        # While total transfer is small against the cartridge, the
        # analytic prediction is within ~3 utilization points.
        for key, measured in result.measured.items():
            predicted = result.predicted[key]
            assert abs(measured - predicted) < 0.05, key

    def test_utilization_monotone_in_transfer_size(self, result):
        for length in result.lengths:
            assert (
                result.measured[(length, 1.0)]
                < result.measured[(length, 30.0)]
            )

    def test_longer_schedules_use_the_drive_better(self, result):
        for megabytes in result.transfer_mb:
            assert (
                result.measured[(10, megabytes)]
                < result.measured[(96, megabytes)]
            )

    def test_rows_and_report(self, result, capsys):
        rows = result.rows()
        assert len(rows) == 4
        figure7_empirical.report(result)
        assert "cross-check" in capsys.readouterr().out

    def test_overlap_regime_breaks_the_algebra(self):
        # When the batch's data approaches the cartridge capacity the
        # prediction over-shoots badly -- the documented breakdown.
        result = figure7_empirical.run(
            ExperimentConfig(scale="quick"),
            lengths=(512,),
            transfer_mb=(100.0,),
            trials=1,
        )
        measured = result.measured[(512, 100.0)]
        predicted = result.predicted[(512, 100.0)]
        assert predicted - measured > 0.10
