"""ASCII chart rendering."""

import pytest

from repro.experiments.ascii_plot import (
    render_per_locate_result,
    render_series,
)


class TestRenderSeries:
    def test_basic_structure(self):
        chart = render_series(
            [1, 10, 100],
            {"a": [10.0, 5.0, 1.0], "b": [20.0, 10.0, 2.0]},
            width=40,
            height=10,
            title="demo",
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        # Frame: top rule + 10 rows + bottom rule.
        assert sum(1 for line in lines if "|" in line) == 10
        assert "a" in lines[-1] and "b" in lines[-1]

    def test_log_axes(self):
        chart = render_series(
            [1, 10, 100],
            {"s": [100.0, 10.0, 1.0]},
            log_x=True,
            log_y=True,
            width=30,
            height=8,
        )
        # A log-log straight line: glyphs on the anti-diagonal.
        rows = [line for line in chart.splitlines() if "|" in line]
        cols = [row.index("o") for row in rows if "o" in row]
        assert cols == sorted(cols)

    def test_none_points_skipped(self):
        chart = render_series(
            [1, 2, 3],
            {"s": [1.0, None, 3.0]},
            width=20,
            height=5,
        )
        plotted = "".join(
            line for line in chart.splitlines() if "|" in line
        )
        assert plotted.count("o") == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            render_series([1], {}, width=10, height=5)
        with pytest.raises(ValueError):
            render_series([1, 2], {"s": [1.0]}, width=10, height=5)
        with pytest.raises(ValueError):
            render_series([1], {"s": [None]}, width=10, height=5)
        with pytest.raises(ValueError):
            render_series([0], {"s": [1.0]}, log_x=True)

    def test_distinct_glyphs(self):
        chart = render_series(
            [1, 2],
            {"one": [1.0, 2.0], "two": [2.0, 4.0], "three": [3.0, 6.0]},
            width=20,
            height=6,
        )
        for glyph in "ox+":
            assert glyph in chart


class TestRenderPerLocate:
    def test_from_runner_result(self):
        from repro.experiments import ExperimentConfig, run_per_locate

        config = ExperimentConfig(lengths=(2, 16), scale="quick")
        result = run_per_locate(
            config, origin_at_start=False, algorithms=("FIFO", "LOSS")
        )
        chart = render_per_locate_result(result, width=40, height=10)
        assert "FIFO" in chart and "LOSS" in chart
        assert "random start" in chart
