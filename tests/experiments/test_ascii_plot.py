"""ASCII chart rendering."""

import pytest

from repro.experiments.ascii_plot import (
    render_per_locate_result,
    render_series,
)


class TestRenderSeries:
    def test_basic_structure(self):
        chart = render_series(
            [1, 10, 100],
            {"a": [10.0, 5.0, 1.0], "b": [20.0, 10.0, 2.0]},
            width=40,
            height=10,
            title="demo",
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        # Frame: top rule + 10 rows + bottom rule.
        assert sum(1 for line in lines if "|" in line) == 10
        assert "a" in lines[-1] and "b" in lines[-1]

    def test_log_axes(self):
        chart = render_series(
            [1, 10, 100],
            {"s": [100.0, 10.0, 1.0]},
            log_x=True,
            log_y=True,
            width=30,
            height=8,
        )
        # A log-log straight line: glyphs on the anti-diagonal.
        rows = [line for line in chart.splitlines() if "|" in line]
        cols = [row.index("o") for row in rows if "o" in row]
        assert cols == sorted(cols)

    def test_none_points_skipped(self):
        chart = render_series(
            [1, 2, 3],
            {"s": [1.0, None, 3.0]},
            width=20,
            height=5,
        )
        plotted = "".join(
            line for line in chart.splitlines() if "|" in line
        )
        assert plotted.count("o") == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            render_series([1], {}, width=10, height=5)
        with pytest.raises(ValueError):
            render_series([1, 2], {"s": [1.0]}, width=10, height=5)
        with pytest.raises(ValueError):
            render_series([1], {"s": [None]}, width=10, height=5)
        with pytest.raises(ValueError):
            render_series([0], {"s": [1.0]}, log_x=True)

    def test_distinct_glyphs(self):
        chart = render_series(
            [1, 2],
            {"one": [1.0, 2.0], "two": [2.0, 4.0], "three": [3.0, 6.0]},
            width=20,
            height=6,
        )
        for glyph in "ox+":
            assert glyph in chart

    def test_flat_series(self):
        # A constant series has zero y-span; the span falls back to 1.0
        # instead of dividing by zero, and the single row is plotted.
        chart = render_series(
            [1, 2, 3],
            {"flat": [5.0, 5.0, 5.0]},
            width=20,
            height=5,
        )
        rows = [line for line in chart.splitlines() if "|" in line]
        populated = [row for row in rows if "o" in row]
        assert len(populated) == 1
        assert populated[0].count("o") == 3

    def test_single_point(self):
        # One point also collapses the x-span; both fallbacks at once.
        chart = render_series([4], {"s": [2.0]}, width=10, height=4)
        assert chart.count("o") >= 1  # plotted glyph + legend

    def test_linear_axis_labels(self):
        chart = render_series(
            [0, 50],
            {"s": [0.0, 25.0]},
            width=20,
            height=5,
        )
        lines = chart.splitlines()
        assert lines[0].strip().startswith("25.0")
        assert lines[-3].strip().startswith("0.0")
        # X labels are the raw endpoints, not 10**log10 round-trips.
        assert "0" in lines[-2] and "50" in lines[-2]

    def test_log_axis_labels_are_delogged(self):
        chart = render_series(
            [1, 100],
            {"s": [1.0, 100.0]},
            log_x=True,
            log_y=True,
            width=20,
            height=5,
        )
        lines = chart.splitlines()
        assert "100.0" in lines[0]
        assert lines[-2].rstrip().endswith("100")

    def test_glyphs_cycle_past_eight_series(self):
        from repro.experiments.ascii_plot import SERIES_GLYPHS

        names = [f"s{i}" for i in range(len(SERIES_GLYPHS) + 2)]
        chart = render_series(
            [1, 2],
            {name: [float(i + 1), float(i + 2)]
             for i, name in enumerate(names)},
            width=30,
            height=12,
        )
        legend = chart.splitlines()[-1]
        # The ninth series reuses the first glyph.
        assert f"{SERIES_GLYPHS[0]} s0" in legend
        assert f"{SERIES_GLYPHS[0]} s{len(SERIES_GLYPHS)}" in legend

    def test_no_title_line(self):
        chart = render_series([1, 2], {"s": [1.0, 2.0]},
                              width=10, height=4)
        assert chart.splitlines()[0].lstrip().startswith(
            "2.0"
        )  # frame starts immediately


class TestRenderPerLocate:
    def test_from_runner_result(self):
        from repro.experiments import ExperimentConfig, run_per_locate

        config = ExperimentConfig(lengths=(2, 16), scale="quick")
        result = run_per_locate(
            config, origin_at_start=False, algorithms=("FIFO", "LOSS")
        )
        chart = render_per_locate_result(result, width=40, height=10)
        assert "FIFO" in chart and "LOSS" in chart
        assert "random start" in chart
