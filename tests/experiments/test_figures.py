"""Per-figure drivers: structure and headline findings at small scale.

Each test runs the real experiment pipeline with a reduced grid and
asserts the *published finding* the figure exists to demonstrate — not
exact numbers, but the orderings and magnitudes that constitute the
reproduction.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    figure1,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    section3_stats,
    summary_table,
)


@pytest.fixture(scope="module")
def small_config():
    return ExperimentConfig(
        lengths=(2, 8, 16, 48), scale="quick"
    )


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return figure1.run(tape_seed=1)

    def test_curves_cover_the_tape(self, result):
        assert result.locate_seconds.shape == result.rewind_seconds.shape
        assert result.destinations.size == result.locate_seconds.size

    def test_dip_magnitudes(self, result):
        assert 4.0 < result.forward_dip_drop < 8.0
        assert 20.0 < result.reverse_dip_drop < 30.0

    def test_dip_count(self, result):
        # ~13 dips per track, 64 tracks, minus blind spots near the
        # source.
        assert 700 < result.dip_segments.size < 1000

    def test_report_prints(self, result, capsys):
        figure1.report(result)
        out = capsys.readouterr().out
        assert "Figure 1" in out


class TestFigures4And5:
    @pytest.fixture(scope="class")
    def results(self, ):
        config = ExperimentConfig(lengths=(2, 8, 16, 48), scale="quick")
        return (
            figure4.run(config, algorithms=("FIFO", "SORT", "LOSS")),
            figure5.run(config, algorithms=("FIFO", "SORT", "LOSS")),
        )

    def test_loss_beats_fifo_everywhere(self, results):
        fig4, _ = results
        for length in (8, 16, 48):
            loss = fig4.point("LOSS", length).per_locate_mean
            fifo = fig4.point("FIFO", length).per_locate_mean
            assert loss < fifo

    def test_fifo_flat_near_random_mean(self, results):
        fig4, _ = results
        for length in (8, 16, 48):
            assert 65 < fig4.point("FIFO", length).per_locate_mean < 80

    def test_bot_start_dearer_for_small_batches(self, results):
        fig4, fig5 = results
        # The expected locate from BOT (~96.5 s) exceeds the
        # random-to-random mean (~72.4 s), so the beginning-of-tape
        # scenario is *more* expensive per locate at tiny batch sizes;
        # the gap washes out as batches grow.
        assert (
            fig5.point("FIFO", 2).per_locate_mean
            > fig4.point("FIFO", 2).per_locate_mean
        )
        gap_small = fig5.point("LOSS", 2).per_locate_mean - fig4.point(
            "LOSS", 2
        ).per_locate_mean
        gap_large = fig5.point("LOSS", 48).per_locate_mean - fig4.point(
            "LOSS", 48
        ).per_locate_mean
        assert abs(gap_large) < abs(gap_small) + 2.0

    def test_per_locate_decreases_with_length(self, results):
        fig4, _ = results
        means = [
            fig4.point("LOSS", n).per_locate_mean for n in (2, 8, 16, 48)
        ]
        assert means == sorted(means, reverse=True)


class TestFigure6:
    def test_cpu_growth_shapes(self):
        config = ExperimentConfig(lengths=(8, 64), scale="quick")
        result = figure6.run(config, algorithms=("SORT", "LOSS"))
        rows = figure6.cpu_rows(result)
        assert len(rows) == 2
        # LOSS costs more CPU than SORT at the same size.
        sort_cpu = result.point("SORT", 64).cpu.mean
        loss_cpu = result.point("LOSS", 64).cpu.mean
        assert loss_cpu > sort_cpu

    def test_report_prints(self, capsys):
        config = ExperimentConfig(lengths=(4,), scale="quick")
        figure6.report(figure6.run(config, algorithms=("SORT",)))
        assert "Figure 6" in capsys.readouterr().out


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7.run(ExperimentConfig(lengths=(1, 10, 96),
                                            scale="quick"))

    def test_higher_utilization_needs_bigger_transfers(self, result):
        for length in (1, 10, 96):
            sizes = [
                result.megabytes[(u, length)]
                for u in result.utilizations
            ]
            assert sizes == sorted(sizes)

    def test_scheduling_shrinks_required_transfers(self, result):
        # The Section 8 reading: solitary I/Os need 50-100 MB, 10-request
        # schedules ~30 MB, longer schedules 10-25 MB (at moderate
        # utilization).
        solitary = result.megabytes[(0.5, 1)]
        batch10 = result.megabytes[(0.5, 10)]
        batch96 = result.megabytes[(0.5, 96)]
        assert 50 < solitary < 150
        assert batch96 < batch10 < solitary

    def test_report_prints(self, result, capsys):
        figure7.report(result)
        assert "Figure 7" in capsys.readouterr().out


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run(ExperimentConfig(scale="quick", max_length=256))

    def test_small_schedules_accurate(self, result):
        by_length = {p.length: p.mean for p in result.points}
        assert abs(by_length[8]) < 2.0
        assert abs(by_length[64]) < 2.5

    def test_error_grows_with_density(self, result):
        by_length = {p.length: abs(p.mean) for p in result.points}
        assert by_length[256] > by_length[8]

    def test_report_prints(self, result, capsys):
        figure8.report(result)
        assert "Figure 8" in capsys.readouterr().out


class TestFigure9:
    def test_wrong_key_points_are_disastrous(self):
        result = figure9.run(
            ExperimentConfig(scale="quick", max_length=256)
        )
        worst = max(abs(p.mean) for p in result.points)
        typical = np.mean(
            [abs(p.mean) for p in result.points if p.length >= 64]
        )
        assert worst > 10.0
        assert typical > 8.0


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return figure10.run(
            ExperimentConfig(lengths=(4, 12, 48), scale="quick")
        )

    def test_small_errors_negligible(self, result):
        for length in (4, 12, 48):
            assert abs(result.increase[(1.0, length)].mean) < 2.5

    def test_opt_is_immune(self, result):
        for (error, length), stats in result.opt_increase.items():
            assert stats.mean == pytest.approx(0.0, abs=1e-6), (
                error, length,
            )

    def test_rows_layout(self, result):
        rows = result.rows()
        assert len(rows) == 3
        assert len(rows[0]) == 1 + len(result.errors)
        opt_rows = result.opt_rows()
        assert [row[0] for row in opt_rows] == [4, 12]

    def test_report_prints(self, result, capsys):
        figure10.report(result)
        out = capsys.readouterr().out
        assert "Figure 10" in out and "OPT" in out


class TestSection3:
    def test_aggregates_near_paper(self):
        result = section3_stats.run(tape_seed=1, samples=30_000)
        assert abs(result.mean_from_bot - 96.5) < 6.0
        assert abs(result.mean_random - 72.4) < 5.0
        assert 150 < result.max_locate < 195
        rows = result.rows()
        assert len(rows) == 4


class TestSummaryTable:
    def test_measured_rates_in_band(self):
        result = summary_table.run(ExperimentConfig(scale="quick"))
        # Within a modest band of every published operating point.
        assert abs(result.fifo_rate - 50) < 8
        assert abs(result.opt_rate_at_10 - 93) < 12
        assert abs(result.loss_rate_at_96 - 124) < 18
        assert abs(result.loss_rate_at_1024 - 285) < 40
        assert abs(result.read_rate_at_1536 - 391) < 25
        assert result.loss_hours_192 < result.fifo_hours_192 / 2

    def test_report_prints(self, capsys):
        config = ExperimentConfig(scale="quick")
        summary_table.report(summary_table.run(config))
        assert "Section 8" in capsys.readouterr().out
