"""Text-table rendering."""

from repro.experiments.report import format_cell, format_table


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_float_precision(self):
        assert format_cell(3.14159, precision=2) == "3.14"
        assert format_cell(3.14159, precision=4) == "3.1416"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_width_pads(self):
        assert format_cell(7, width=4) == "   7"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["N", "value"], [[1, 2.5], [100, 33.25]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows share a width.
        assert len({len(line) for line in lines}) == 1

    def test_title_and_rule(self):
        text = format_table(["a"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_none_cells(self):
        text = format_table(["a", "b"], [[1, None]])
        assert "-" in text.splitlines()[-1]
