"""Utilization algebra (Figure 7)."""

import numpy as np
import pytest

from repro.analysis import (
    FIGURE7_UTILIZATIONS,
    transfer_size_for_utilization,
    utilization_curve,
    utilization_for_transfer_size,
)


class TestFormula:
    def test_round_trip(self):
        for utilization in FIGURE7_UTILIZATIONS:
            size = transfer_size_for_utilization(
                utilization, schedule_length=10,
                total_locate_seconds=400.0,
            )
            back = utilization_for_transfer_size(
                size, schedule_length=10, total_locate_seconds=400.0
            )
            assert back == pytest.approx(utilization)

    def test_higher_utilization_needs_bigger_transfers(self):
        sizes = [
            transfer_size_for_utilization(u, 10, 400.0)
            for u in (0.25, 0.5, 0.9)
        ]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_longer_schedules_need_smaller_transfers(self):
        # Locate cost per request falls faster than 1/n stays constant;
        # with a fixed per-request locate cost the size is constant, so
        # feed decreasing per-request costs as in reality.
        small = transfer_size_for_utilization(0.5, 10, 10 * 40.0)
        large = transfer_size_for_utilization(0.5, 1000, 1000 * 12.0)
        assert large < small

    def test_validation(self):
        with pytest.raises(ValueError):
            transfer_size_for_utilization(0.0, 10, 100.0)
        with pytest.raises(ValueError):
            transfer_size_for_utilization(1.0, 10, 100.0)
        with pytest.raises(ValueError):
            transfer_size_for_utilization(0.5, 0, 100.0)
        with pytest.raises(ValueError):
            transfer_size_for_utilization(0.5, 10, -1.0)
        with pytest.raises(ValueError):
            utilization_for_transfer_size(0.0, 1, 0.0)

    def test_curve_vectorized(self):
        lengths = np.asarray([1, 10, 100])
        locates = np.asarray([70.0, 400.0, 2700.0])
        curve = utilization_curve(0.5, lengths, locates)
        assert curve.shape == (3,)
        expected = [
            transfer_size_for_utilization(0.5, int(n), float(ell)) / 1e6
            for n, ell in zip(lengths, locates)
        ]
        np.testing.assert_allclose(curve, expected)


class TestPaperReadings:
    def test_solitary_io_needs_50_to_100_mb(self):
        # Paper Section 8: "solitary I/Os need to transfer contiguous
        # chunks of at least 50-100 MB to get good device utilization."
        # One random locate costs ~72 s on average.
        size = transfer_size_for_utilization(0.5, 1, 72.4)
        assert 50e6 < size < 150e6

    def test_scheduled_batches_need_10_to_25_mb(self):
        # "Scheduling ... giving acceptable utilization with transfer
        # sizes in the range 10-25 MB" -- e.g. ~28 s per locate at
        # batch size 96 and 50% utilization.
        size = transfer_size_for_utilization(0.5, 96, 96 * 28.0)
        assert 10e6 < size < 50e6
