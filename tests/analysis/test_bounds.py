"""Schedule lower bounds and optimality gaps."""

import numpy as np
import pytest

from repro.analysis import optimality_gap, schedule_lower_bound
from repro.analysis.bounds import in_edge_bound, out_edge_bound
from repro.scheduling import (
    FifoScheduler,
    LossScheduler,
    OptScheduler,
    get_scheduler,
)


class TestMatrixBounds:
    def test_in_edge_bound_simple(self):
        distance = np.asarray([[1.0, 5.0], [9.0, 2.0], [7.0, 8.0]])
        assert in_edge_bound(distance) == pytest.approx(1.0 + 2.0)

    def test_out_edge_bound_drops_final_row(self):
        distance = np.asarray([[1.0, 5.0], [9.0, 2.0], [7.0, 8.0]])
        # Origin row min 1; inner row mins 2 and 7; drop the larger.
        assert out_edge_bound(distance) == pytest.approx(1.0 + 2.0)


class TestScheduleBound:
    def test_bound_never_exceeds_opt(self, tiny_model, rng):
        for _ in range(8):
            batch = rng.choice(
                tiny_model.geometry.total_segments, 8, replace=False
            ).tolist()
            opt = OptScheduler().schedule(tiny_model, 0, batch)
            bound = schedule_lower_bound(tiny_model, 0, batch)
            assert bound <= opt.estimated_seconds + 1e-9

    def test_bound_below_every_heuristic(self, full_model, rng):
        batch = rng.choice(
            full_model.geometry.total_segments, 64, replace=False
        ).tolist()
        bound = schedule_lower_bound(full_model, 0, batch)
        for name in ("FIFO", "SORT", "SLTF", "SCAN", "WEAVE", "LOSS"):
            schedule = get_scheduler(name).schedule(full_model, 0, batch)
            assert bound <= schedule.estimated_seconds + 1e-9, name

    def test_transfers_flag(self, tiny_model, rng):
        batch = rng.choice(
            tiny_model.geometry.total_segments, 6, replace=False
        ).tolist()
        with_transfers = schedule_lower_bound(tiny_model, 0, batch)
        without = schedule_lower_bound(
            tiny_model, 0, batch, include_transfers=False
        )
        assert with_transfers > without


class TestOptimalityGap:
    def test_loss_gap_is_modest(self, full_model, rng):
        # The evaluation the paper could not run: LOSS sits within a
        # bounded factor of optimal at sizes far past OPT's reach.
        gaps = []
        for _ in range(4):
            batch = rng.choice(
                full_model.geometry.total_segments, 96, replace=False
            ).tolist()
            schedule = LossScheduler().schedule(full_model, 0, batch)
            gaps.append(optimality_gap(full_model, schedule))
        mean_gap = float(np.mean(gaps))
        assert 0.0 <= mean_gap < 0.8

    def test_fifo_gap_is_large(self, full_model, rng):
        batch = rng.choice(
            full_model.geometry.total_segments, 96, replace=False
        ).tolist()
        fifo = FifoScheduler().schedule(full_model, 0, batch)
        loss = LossScheduler().schedule(full_model, 0, batch)
        assert optimality_gap(full_model, fifo) > 2 * optimality_gap(
            full_model, loss
        )

    def test_opt_gap_nonnegative(self, tiny_model, rng):
        batch = rng.choice(
            tiny_model.geometry.total_segments, 7, replace=False
        ).tolist()
        opt = OptScheduler().schedule(tiny_model, 0, batch)
        assert optimality_gap(tiny_model, opt) >= 0.0
