"""Batch-size planning."""

import math

import pytest

from repro.analysis import (
    PerLocateCurve,
    estimated_response_seconds,
    is_stable,
    min_stable_batch,
    recommend_batch,
)

#: A Figure 4-shaped curve (LOSS, seconds per request).
CURVE = PerLocateCurve(
    lengths=(1, 10, 96, 1024),
    seconds_per_request=(73.0, 42.5, 27.5, 12.3),
)


class TestCurve:
    def test_exact_points(self):
        assert CURVE.at(10) == pytest.approx(42.5)
        assert CURVE.at(1024) == pytest.approx(12.3)

    def test_clamped_ends(self):
        assert CURVE.at(1) == pytest.approx(73.0)
        assert CURVE.at(5000) == pytest.approx(12.3)

    def test_interpolation_monotone(self):
        previous = CURVE.at(1)
        for size in (2, 5, 20, 50, 200, 800):
            value = CURVE.at(size)
            assert value <= previous
            previous = value

    def test_validation(self):
        with pytest.raises(ValueError):
            PerLocateCurve((1, 2), (3.0,))
        with pytest.raises(ValueError):
            PerLocateCurve((), ())
        with pytest.raises(ValueError):
            PerLocateCurve((5, 2), (1.0, 2.0))
        with pytest.raises(ValueError):
            CURVE.at(0)

    def test_capacity(self):
        assert CURVE.capacity_per_hour(96) == pytest.approx(3600 / 27.5)

    def test_from_runner_result(self):
        from repro.experiments import ExperimentConfig, run_per_locate

        result = run_per_locate(
            ExperimentConfig(lengths=(4, 16), scale="quick"),
            origin_at_start=False,
            algorithms=("LOSS",),
        )
        curve = PerLocateCurve.from_per_locate_result(result, "LOSS")
        assert curve.lengths == (4, 16)
        assert curve.at(4) > curve.at(16)


class TestStability:
    def test_unscheduled_rate_limit(self):
        # At batch 1 the drive does ~49 I/Os per hour.
        assert is_stable(CURVE, 1, 40.0)
        assert not is_stable(CURVE, 1, 60.0)

    def test_bigger_batches_raise_the_ceiling(self):
        assert not is_stable(CURVE, 1, 100.0)
        assert is_stable(CURVE, 96, 100.0)

    def test_min_stable_batch(self):
        assert min_stable_batch(CURVE, 40.0) == 1
        assert min_stable_batch(CURVE, 100.0) == 96
        # Beyond even the 1024-batch ceiling (~293/hour).
        assert min_stable_batch(CURVE, 400.0) is None

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            is_stable(CURVE, 1, 0.0)


class TestResponsePlanning:
    def test_unstable_is_infinite(self):
        assert math.isinf(
            estimated_response_seconds(CURVE, 1, 200.0)
        )

    def test_finite_at_stable_point(self):
        estimate = estimated_response_seconds(CURVE, 96, 100.0)
        # Fill wait 96/(2*rate) = 1728 s; service wait 96*27.5/2 = 1320.
        assert estimate == pytest.approx(1728.0 + 1320.0)

    def test_recommend_balances_fill_and_service(self):
        recommendation = recommend_batch(CURVE, 100.0)
        assert recommendation is not None
        batch, estimate = recommendation
        assert batch == 96
        assert estimate < estimated_response_seconds(CURVE, 1024, 100.0)

    def test_recommend_none_when_overloaded(self):
        assert recommend_batch(CURVE, 500.0) is None

    def test_low_rate_prefers_small_batches(self):
        batch, _ = recommend_batch(CURVE, 20.0)
        assert batch <= 10
