"""Retrieval-rate arithmetic."""

import pytest

from repro.analysis import PaperSummaryTargets, hours_for_batch, ios_per_hour


class TestRates:
    def test_basic(self):
        assert ios_per_hour(3600.0, 50) == pytest.approx(50.0)
        assert ios_per_hour(1800.0, 50) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ios_per_hour(0.0, 5)
        with pytest.raises(ValueError):
            ios_per_hour(10.0, 0)

    def test_hours(self):
        assert hours_for_batch(7200.0) == pytest.approx(2.0)

    def test_paper_targets_are_self_consistent(self):
        targets = PaperSummaryTargets()
        # 192 I/Os at the unscheduled rate of ~50/hour is ~3.87 hours.
        assert 192 / targets.fifo_rate == pytest.approx(
            targets.fifo_hours_192, rel=0.02
        )
        # READ at 1536: 14,000 s for the whole tape.
        implied_read_seconds = 3600.0 * 1536 / targets.read_rate_at_1536
        assert implied_read_seconds == pytest.approx(14_000, rel=0.02)
