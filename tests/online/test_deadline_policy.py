"""DeadlineBatchPolicy: the deadline-aware batch cut."""

import math

import pytest

from repro.online import BatchPolicy, DeadlineBatchPolicy
from repro.online.batch_queue import BatchQueue
from repro.workload import TimedRequest


def request(arrival, segment=0):
    return TimedRequest(
        arrival_seconds=arrival, segment=segment, length=1
    )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_seconds": 0.0},
            {"deadline_seconds": -1.0},
            {"deadline_seconds": float("nan")},
            {"cut_slack_seconds": -1.0},
            {"cut_slack_seconds": float("nan")},
            {"deadline_seconds": 10.0, "cut_slack_seconds": 10.0},
            {"deadline_seconds": 10.0, "cut_slack_seconds": 20.0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            DeadlineBatchPolicy(**kwargs)


class TestCut:
    def test_defaults_degenerate_to_base_policy(self):
        base = BatchPolicy(max_batch=8, max_wait_seconds=100.0)
        deadline = DeadlineBatchPolicy(
            max_batch=8, max_wait_seconds=100.0
        )
        assert deadline.hold_seconds() == base.hold_seconds()
        assert deadline.next_deadline_seconds(
            5.0
        ) == base.next_deadline_seconds(5.0)

    def test_deadline_tightens_the_hold(self):
        policy = DeadlineBatchPolicy(
            max_wait_seconds=1000.0,
            deadline_seconds=300.0,
            cut_slack_seconds=100.0,
        )
        assert policy.hold_seconds() == 200.0
        assert policy.next_deadline_seconds(50.0) == 250.0

    def test_max_wait_still_wins_when_tighter(self):
        policy = DeadlineBatchPolicy(
            max_wait_seconds=60.0,
            deadline_seconds=1000.0,
            cut_slack_seconds=10.0,
        )
        assert policy.hold_seconds() == 60.0

    def test_infinite_deadline_means_no_time_cut(self):
        policy = DeadlineBatchPolicy(
            max_wait_seconds=float("inf")
        )
        assert math.isinf(policy.hold_seconds())
        assert math.isinf(policy.next_deadline_seconds(0.0))

    def test_queue_flushes_at_the_deadline_cut(self):
        queue = BatchQueue(
            policy=DeadlineBatchPolicy(
                max_batch=100,
                max_wait_seconds=float("inf"),
                deadline_seconds=300.0,
                cut_slack_seconds=100.0,
            )
        )
        queue.push(request(0.0))
        queue.push(request(50.0))
        assert not queue.ready(now_seconds=199.0, drive_idle=False)
        assert queue.ready(now_seconds=200.0, drive_idle=False)
        assert len(queue.flush()) == 2
