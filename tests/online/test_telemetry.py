"""The instrumented online system: one bus, every layer, exact accounting."""

import pytest

from repro.geometry import tiny_tape
from repro.obs import (
    EventBus,
    TraceRecorder,
    cache_stats_from_events,
    response_stats_from_events,
)
from repro.online import (
    BatchPolicy,
    Cartridge,
    TapeLibrary,
    TertiaryStorageSystem,
)
from repro.cache import CachedTertiaryStorageSystem, SegmentCache
from repro.scheduling import ReadEntireTapeScheduler
from repro.workload import (
    PoissonArrivals,
    TimedRequest,
    ZipfArrivals,
    ZipfWorkload,
)

PHASE_TOLERANCE = 1e-6


@pytest.fixture()
def tape():
    return tiny_tape(seed=5)


def poisson_requests(tape, rate=400.0, hours=2.0, seed=1):
    return PoissonArrivals(
        rate_per_hour=rate, total_segments=tape.total_segments, seed=seed
    ).batch(hours * 3600.0)


def instrumented_run(tape, requests, **system_kwargs):
    bus = EventBus()
    recorder = TraceRecorder(bus)
    system = TertiaryStorageSystem(geometry=tape, bus=bus, **system_kwargs)
    stats = system.run(requests)
    return system, stats, recorder


class TestPhaseReconciliation:
    def test_figure4_style_workload(self, tape):
        """Every batch's phase durations partition its execution."""
        system, _, recorder = instrumented_run(
            tape, poisson_requests(tape),
            policy=BatchPolicy(max_batch=16),
        )
        spans = recorder.batch_spans()
        assert len(spans) == len(system.batches) > 1
        for span, record in zip(spans, system.batches):
            assert span.phase_seconds == pytest.approx(
                span.total_seconds, abs=PHASE_TOLERANCE
            )
            assert span.total_seconds == record.execution_seconds
            assert record.phase_seconds == pytest.approx(
                record.execution_seconds, abs=PHASE_TOLERANCE
            )

    def test_whole_tape_read_plan_reconciles(self, tape):
        """READ plans route rewinds into the rewind phase, not locate."""
        requests = [TimedRequest(0.0, s) for s in range(0, 90, 7)]
        system, _, recorder = instrumented_run(
            tape, requests,
            scheduler=ReadEntireTapeScheduler(),
            policy=BatchPolicy(max_batch=len(requests)),
        )
        (span,) = recorder.batch_spans()
        assert span.rewind_seconds > 0.0
        assert span.phase_seconds == pytest.approx(
            span.total_seconds, abs=PHASE_TOLERANCE
        )

    def test_summary_execution_matches_batches(self, tape):
        system, _, recorder = instrumented_run(
            tape, poisson_requests(tape, hours=1.0),
            policy=BatchPolicy(max_batch=8),
        )
        summary = recorder.summary()
        total = sum(b.execution_seconds for b in system.batches)
        assert summary.execution_seconds == pytest.approx(total)
        assert (
            summary.locate_seconds
            + summary.transfer_seconds
            + summary.rewind_seconds
        ) == pytest.approx(summary.execution_seconds, abs=PHASE_TOLERANCE)


class TestStatsAreStreamConsumers:
    def test_event_stream_reproduces_response_stats(self, tape):
        """ResponseStats rebuilt from events == the system's own stats."""
        _, stats, recorder = instrumented_run(
            tape, poisson_requests(tape),
            policy=BatchPolicy(max_batch=16),
        )
        rebuilt = response_stats_from_events(recorder.events)
        assert rebuilt.count == stats.count
        assert rebuilt.samples == stats.samples
        assert rebuilt.mean_seconds == stats.mean_seconds

    def test_trace_mean_matches_stats_mean(self, tape):
        _, stats, recorder = instrumented_run(
            tape, poisson_requests(tape, hours=1.0),
            policy=BatchPolicy(max_batch=8),
        )
        summary = recorder.summary()
        assert summary.request_count == stats.count
        assert summary.mean_response_seconds == pytest.approx(
            stats.mean_seconds, rel=1e-12
        )

    def test_per_request_completions_not_batch_end(self, tape):
        """Regression: requests complete at their own read, not at
        batch end — batch-end stamping would give every request in a
        batch the same completion time and inflate the mean."""
        requests = [TimedRequest(0.0, s) for s in (5, 90, 40, 70, 20)]
        system, stats, recorder = instrumented_run(
            tape, requests, policy=BatchPolicy(max_batch=len(requests)),
        )
        (record,) = system.batches
        completions = [
            e.completion_seconds
            for e in recorder.events
            if e.name == "request.complete"
        ]
        assert len(set(completions)) == len(completions)
        batch_end = record.start_seconds + record.execution_seconds
        assert max(completions) <= batch_end + 1e-9
        assert min(completions) < batch_end - 1.0
        assert stats.mean_seconds < batch_end

    def test_no_bus_run_identical(self, tape):
        """Instrumentation must not perturb the simulation."""
        requests = poisson_requests(tape, hours=1.0)
        plain = TertiaryStorageSystem(
            geometry=tape, policy=BatchPolicy(max_batch=8)
        )
        stats_plain = plain.run(requests)
        _, stats_bus, _ = instrumented_run(
            tape, requests, policy=BatchPolicy(max_batch=8)
        )
        assert stats_bus.samples == stats_plain.samples


class TestEstimates:
    def test_locate_events_carry_estimates(self, tape):
        _, _, recorder = instrumented_run(
            tape, poisson_requests(tape, hours=1.0),
            policy=BatchPolicy(max_batch=8),
        )
        locates = [
            e for e in recorder.events if e.name == "request.locate"
        ]
        assert locates
        for event in locates:
            assert event.estimated_seconds is not None
            # Model-driven drive: the estimate IS the physics.
            assert event.estimated_seconds == pytest.approx(
                event.actual_seconds, abs=1e-9
            )

    def test_schedule_computed_carries_estimate(self, tape):
        system, _, recorder = instrumented_run(
            tape, poisson_requests(tape, hours=1.0),
            policy=BatchPolicy(max_batch=8),
        )
        computed = [
            e for e in recorder.events if e.name == "schedule.computed"
        ]
        assert len(computed) == len(system.batches)
        for event in computed:
            assert event.algorithm
            assert event.estimated_seconds is not None


class TestQueueEvents:
    def test_admits_and_dispatches_balance(self, tape):
        requests = poisson_requests(tape, hours=1.0)
        system, _, recorder = instrumented_run(
            tape, requests, policy=BatchPolicy(max_batch=8),
        )
        admits = [e for e in recorder.events if e.name == "queue.admit"]
        dispatches = [
            e for e in recorder.events if e.name == "queue.dispatch"
        ]
        assert len(admits) == len(requests)
        assert sum(d.batch_size for d in dispatches) == len(requests)
        assert len(dispatches) == len(system.batches)

    def test_clock_stamps_monotone_per_kind(self, tape):
        """Simulation-time stamps never go backwards within a kind.

        (The full stream is publish-ordered, not stamp-ordered:
        ``request.complete`` events are published once the batch's
        execution is known, stamped with their mid-batch completion
        instants.)
        """
        _, _, recorder = instrumented_run(
            tape, poisson_requests(tape, hours=1.0),
            policy=BatchPolicy(max_batch=8),
        )
        completions = [
            e.seconds for e in recorder.events
            if e.name == "request.complete"
        ]
        other = [
            e.seconds for e in recorder.events
            if e.name not in ("drive.op", "request.complete")
        ]
        assert completions == sorted(completions)
        assert other == sorted(other)


class TestCachedSystem:
    def run_cached(self, tape, capacity=64):
        bus = EventBus()
        recorder = TraceRecorder(bus)
        workload = ZipfWorkload(
            total_segments=tape.total_segments, alpha=0.9,
            universe=30, seed=2,
        )
        requests = ZipfArrivals(
            rate_per_hour=600.0, workload=workload, seed=2
        ).batch(2 * 3600.0)
        system = CachedTertiaryStorageSystem(
            geometry=tape,
            policy=BatchPolicy(max_batch=8),
            cache=SegmentCache(capacity, bus=bus),
            bus=bus,
        )
        stats = system.run(requests)
        return system, stats, recorder

    def test_cache_stats_rebuilt_from_stream(self, tape):
        system, _, recorder = self.run_cached(tape)
        rebuilt = cache_stats_from_events(recorder.events)
        actual = system.cache_stats
        assert rebuilt.hits == actual.hits
        assert rebuilt.misses == actual.misses
        assert rebuilt.hit_segments == actual.hit_segments
        assert rebuilt.miss_segments == actual.miss_segments
        assert rebuilt.insertions == actual.insertions
        assert rebuilt.prefetch_insertions == actual.prefetch_insertions
        assert rebuilt.rejections == actual.rejections
        assert rebuilt.evictions == actual.evictions

    def test_hits_complete_with_sentinel_position(self, tape):
        system, stats, recorder = self.run_cached(tape)
        assert system.cache_stats.hits > 0
        spans = [
            s for s in recorder.request_spans() if s.cache_hit
        ]
        assert len(spans) == system.cache_stats.hits
        assert stats.count == len(recorder.request_spans())


class TestLibraryEvents:
    def test_mount_unmount_published(self):
        bus = EventBus()
        events = bus.collect(["library.mount", "library.unmount"])
        library = TapeLibrary(
            [
                Cartridge("alpha", tiny_tape(seed=1)),
                Cartridge("beta", tiny_tape(seed=2)),
            ],
            exchange_seconds=30.0,
            bus=bus,
        )
        library.mount("alpha")
        library.drive.locate(40)
        library.mount("beta")  # implies unmount of alpha
        names = [e.name for e in events]
        assert names == [
            "library.mount", "library.unmount", "library.mount",
        ]
        unmount = events[1]
        assert unmount.label == "alpha"
        assert unmount.rewind_seconds > 0.0

    def test_mounted_drive_shares_bus(self):
        bus = EventBus()
        ops = bus.collect("drive.op")
        library = TapeLibrary(
            [Cartridge("alpha", tiny_tape(seed=1))], bus=bus
        )
        library.mount("alpha")
        library.drive.locate(40)
        assert any(op.kind == "locate" for op in ops)
