"""Replicated striped volumes and the degraded-read coordinator.

The placement tests pin the rotated-replica layout (losing one
cartridge costs exactly one copy of each unit, never two) and the
validation surface added to :class:`StripeMapping`.  The coordinator
tests drive a real :class:`MultiDriveSystem` through the opened
serving surface and check the durability contract the chaos sweep
gates on: every logical read ends either completed or surfaced as
failed — ``lost`` is zero by construction, with or without faults.
"""

from __future__ import annotations

import pytest

from repro.exceptions import LibraryError, SegmentOutOfRange, UnknownTape
from repro.geometry import tiny_tape
from repro.library import Cartridge, MultiDriveSystem
from repro.online import (
    BatchPolicy,
    StripeMapping,
    StripedReadCoordinator,
    StripedVolume,
    striped_volume,
)
from repro.resilience import FaultPlan
from repro.resilience.policy import ResilienceConfig, RetryPolicy

CARTRIDGES = 4
STRIPE_UNIT = 4


def shelf(count=CARTRIDGES):
    return [
        Cartridge(f"vol{i}", tiny_tape(seed=i + 1)) for i in range(count)
    ]


def make_system(tapes, fault_plan=None):
    """A small library with tight budgets, so faults surface quickly."""
    return MultiDriveSystem(
        tapes,
        drives=2,
        policy=BatchPolicy(max_batch=8),
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=2), max_requeues=0
        ),
        fault_plan=fault_plan,
    )


class TestStripeMappingValidation:
    @pytest.mark.parametrize("field", [
        "drives", "stripe_unit", "units_per_drive",
    ])
    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive_dimensions(self, field, bad):
        kwargs = {"drives": 2, "stripe_unit": 2, "units_per_drive": 5}
        kwargs[field] = bad
        with pytest.raises(LibraryError):
            StripeMapping(**kwargs)


class TestStripedVolumePlacement:
    def test_validation(self):
        mapping = StripeMapping(
            drives=3, stripe_unit=2, units_per_drive=4
        )
        with pytest.raises(LibraryError):
            StripedVolume(labels=("a", "b"), mapping=mapping)
        with pytest.raises(LibraryError):
            StripedVolume(labels=("a", "b", "a"), mapping=mapping)
        for replicas in (0, 4):
            with pytest.raises(LibraryError):
                StripedVolume(
                    labels=("a", "b", "c"),
                    mapping=mapping,
                    replicas=replicas,
                )

    def test_primary_replica_matches_the_plain_mapping(self):
        volume = striped_volume(shelf(), stripe_unit=STRIPE_UNIT,
                                replicas=2)
        for logical in range(volume.logical_total):
            drive, physical = volume.mapping.locate(logical)
            assert volume.locate(logical, replica=0) == (
                volume.labels[drive], physical,
            )

    def test_rotation_spreads_copies_over_distinct_cartridges(self):
        volume = striped_volume(shelf(), stripe_unit=STRIPE_UNIT,
                                replicas=3)
        for unit in range(volume.total_units):
            labels = {
                volume.unit_location(unit, r)[0]
                for r in range(volume.replicas)
            }
            # Rotated placement: every copy of a unit is on a
            # different cartridge, so one cartridge loss costs at most
            # one copy.
            assert len(labels) == volume.replicas

    def test_replica_regions_never_collide(self):
        volume = striped_volume(shelf(), stripe_unit=STRIPE_UNIT,
                                replicas=2)
        placements = {}
        for unit in range(volume.total_units):
            for replica in range(volume.replicas):
                spot = volume.unit_location(unit, replica)
                assert spot not in placements, (
                    f"unit {unit} replica {replica} collides with "
                    f"{placements[spot]}"
                )
                placements[spot] = (unit, replica)

    def test_unit_runs_cover_the_range(self):
        volume = striped_volume(shelf(), stripe_unit=STRIPE_UNIT,
                                replicas=2)
        runs = volume.unit_runs(STRIPE_UNIT - 1, STRIPE_UNIT + 2)
        assert sum(run for _, _, run in runs) == STRIPE_UNIT + 2
        assert all(
            0 <= offset and offset + run <= STRIPE_UNIT
            for _, offset, run in runs
        )
        # Crossing a unit boundary splits the read.
        assert len(runs) == 3

    def test_unit_runs_rejects_bad_ranges(self):
        volume = striped_volume(shelf(), stripe_unit=STRIPE_UNIT)
        with pytest.raises(LibraryError):
            volume.unit_runs(0, 0)
        with pytest.raises(SegmentOutOfRange):
            volume.unit_runs(volume.logical_total - 1, 2)

    def test_factory_rejects_oversized_stripes(self):
        tapes = shelf(2)
        huge = min(t.geometry.total_segments for t in tapes) + 1
        with pytest.raises(LibraryError):
            striped_volume(tapes, stripe_unit=huge)
        with pytest.raises(LibraryError):
            striped_volume([], stripe_unit=1)


class TestCoordinatorCleanPath:
    def test_all_reads_complete_without_faults(self):
        tapes = shelf()
        volume = striped_volume(tapes, stripe_unit=STRIPE_UNIT,
                                replicas=2)
        system = make_system(tapes)
        coordinator = StripedReadCoordinator(system, volume)
        system.begin()
        for k in range(10):
            logical = (k * 3) % (volume.logical_total - STRIPE_UNIT)
            coordinator.submit(
                arrival_seconds=60.0 * k,
                logical_segment=logical,
                length=1 + k % STRIPE_UNIT,
            )
        system.finish()
        assert coordinator.reads == 10
        assert coordinator.completed == 10
        assert coordinator.lost == 0
        assert coordinator.failed_reads == []
        assert coordinator.degraded_reads == 0
        assert coordinator.stats.count == 10

    def test_rejects_unknown_cartridges(self):
        tapes = shelf()
        volume = striped_volume(
            tapes + [Cartridge("ghost", tiny_tape(seed=99))],
            stripe_unit=STRIPE_UNIT,
        )
        system = make_system(tapes)
        with pytest.raises(UnknownTape):
            StripedReadCoordinator(system, volume)


class TestCoordinatorDegradedPath:
    def test_certain_faults_surface_every_read(self):
        # read_fault_probability=1.0: every attempt on every replica
        # fails, so each sub-request degrades through the replica
        # chain and the read ends in failed_reads — surfaced, not
        # lost.
        tapes = shelf()
        volume = striped_volume(tapes, stripe_unit=STRIPE_UNIT,
                                replicas=2)
        system = make_system(
            tapes, fault_plan=FaultPlan(read_fault_probability=1.0)
        )
        coordinator = StripedReadCoordinator(system, volume)
        system.begin()
        for k in range(4):
            coordinator.submit(
                arrival_seconds=120.0 * k,
                logical_segment=k * STRIPE_UNIT,
                length=1,
            )
        system.finish()
        assert coordinator.lost == 0
        assert len(coordinator.failed_reads) == 4
        assert coordinator.completed == 0
        # Each unit fell back to replica 1 before giving up, and the
        # repair it triggered failed on every source too.
        assert coordinator.degraded_reads == 4
        assert coordinator.repairs_started == 4
        assert coordinator.repairs_failed == 4

    def test_partial_faults_keep_the_durability_ledger_balanced(self):
        tapes = shelf()
        volume = striped_volume(tapes, stripe_unit=STRIPE_UNIT,
                                replicas=2)
        system = make_system(
            tapes,
            fault_plan=FaultPlan(
                locate_fault_probability=0.2,
                read_fault_probability=0.2,
                seed=23,
            ),
        )
        coordinator = StripedReadCoordinator(system, volume)
        system.begin()
        for k in range(20):
            logical = (k * 5) % (volume.logical_total - STRIPE_UNIT)
            coordinator.submit(
                arrival_seconds=90.0 * k,
                logical_segment=logical,
                length=1 + k % 3,
            )
        system.finish()
        assert coordinator.lost == 0
        assert (
            coordinator.completed + len(coordinator.failed_reads)
            == coordinator.reads
        )
        assert (
            coordinator.repairs_completed + coordinator.repairs_failed
            <= coordinator.repairs_started
        )

    def test_single_replica_has_no_degraded_fallback(self):
        tapes = shelf()
        volume = striped_volume(tapes, stripe_unit=STRIPE_UNIT,
                                replicas=1)
        system = make_system(
            tapes, fault_plan=FaultPlan(read_fault_probability=1.0)
        )
        coordinator = StripedReadCoordinator(system, volume)
        system.begin()
        coordinator.submit(
            arrival_seconds=0.0, logical_segment=0, length=1
        )
        system.finish()
        assert coordinator.lost == 0
        assert len(coordinator.failed_reads) == 1
        assert coordinator.degraded_reads == 0
        assert coordinator.repairs_started == 0
