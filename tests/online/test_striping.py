"""Striped tape arrays."""

import pytest

from repro.exceptions import LibraryError, SegmentOutOfRange
from repro.geometry import tiny_tape
from repro.online import Cartridge, StripeMapping, StripedTapeArray


@pytest.fixture()
def array():
    return StripedTapeArray(
        [Cartridge(f"vol{i}", tiny_tape(seed=i)) for i in range(3)],
        stripe_unit=4,
    )


class TestStripeMapping:
    def test_round_robin(self):
        mapping = StripeMapping(drives=3, stripe_unit=2,
                                units_per_drive=10)
        # Unit 0 -> drive 0, unit 1 -> drive 1, unit 2 -> drive 2,
        # unit 3 -> drive 0 again.
        assert mapping.locate(0) == (0, 0)
        assert mapping.locate(1) == (0, 1)
        assert mapping.locate(2) == (1, 0)
        assert mapping.locate(4) == (2, 0)
        assert mapping.locate(6) == (0, 2)

    def test_bijective(self):
        mapping = StripeMapping(drives=4, stripe_unit=3,
                                units_per_drive=7)
        seen = set()
        for logical in range(mapping.logical_total):
            drive, physical = mapping.locate(logical)
            assert mapping.logical_of(drive, physical) == logical
            seen.add((drive, physical))
        assert len(seen) == mapping.logical_total

    def test_out_of_range(self):
        mapping = StripeMapping(drives=2, stripe_unit=1,
                                units_per_drive=5)
        with pytest.raises(SegmentOutOfRange):
            mapping.locate(mapping.logical_total)


class TestStripedTapeArray:
    def test_validation(self):
        with pytest.raises(LibraryError):
            StripedTapeArray([])
        with pytest.raises(LibraryError):
            StripedTapeArray(
                [Cartridge("v", tiny_tape(seed=1))], stripe_unit=0
            )

    def test_logical_capacity(self, array):
        smallest = min(
            c.geometry.total_segments for c in array.cartridges
        )
        assert array.logical_total == 3 * (smallest // 4) * 4

    def test_split_covers_batch(self, array, rng):
        batch = rng.choice(array.logical_total, 60, replace=False)
        split = array.split_batch(batch)
        assert sum(len(part) for part in split) == 60
        # Roughly balanced across drives under uniform load.
        for part in split:
            assert 8 <= len(part) <= 35

    def test_service_batch(self, array, rng):
        batch = rng.choice(array.logical_total, 45, replace=False)
        result = array.service_batch(batch)
        assert result.makespan_seconds == max(result.drive_seconds)
        assert sum(result.drive_requests) == 45
        assert 0.0 < result.parallel_efficiency <= 1.0

    def test_parallelism_beats_single_drive(self, rng):
        # The same workload on a 1-drive "array" vs a 3-drive array.
        tapes = [tiny_tape(seed=i, tracks=6) for i in range(3)]
        single = StripedTapeArray(
            [Cartridge("solo", tapes[0])], stripe_unit=1
        )
        triple = StripedTapeArray(
            [Cartridge(f"v{i}", tape) for i, tape in enumerate(tapes)],
            stripe_unit=1,
        )
        size = 45
        batch = rng.choice(single.logical_total, size, replace=False)
        solo_time = single.service_batch(batch).makespan_seconds

        batch3 = rng.choice(triple.logical_total, size, replace=False)
        triple_time = triple.service_batch(batch3).makespan_seconds
        # Better than single, worse than perfect 3x (smaller per-drive
        # batches schedule worse -- the Figure 4 effect).
        assert triple_time < solo_time
        assert triple_time > solo_time / 3.5

    def test_sequential_batches_carry_head_positions(self, array, rng):
        first = rng.choice(array.logical_total, 30, replace=False)
        second = rng.choice(array.logical_total, 30, replace=False)
        array.service_batch(first)
        result = array.service_batch(second)
        assert result.makespan_seconds > 0

    def test_empty_drive_sub_batch(self, array):
        # A batch confined to one drive's stripe units leaves the other
        # drives idle: their drive_seconds entry is exactly 0.0 and the
        # makespan is the busy drive's time.
        drive0_only = [
            logical
            for logical in range(0, 12 * array.mapping.stripe_unit)
            if array.mapping.locate(logical)[0] == 0
        ]
        result = array.service_batch(drive0_only)
        assert result.drive_requests[0] == len(drive0_only)
        assert result.drive_requests[1:] == (0, 0)
        assert result.drive_seconds[1:] == (0.0, 0.0)
        assert result.makespan_seconds == result.drive_seconds[0]
        # One busy drive out of three.
        assert result.parallel_efficiency == pytest.approx(1 / 3)

    def test_custom_scheduler(self, rng):
        from repro.scheduling.base import get_scheduler

        tapes = [tiny_tape(seed=i) for i in range(2)]
        batch_for = lambda a: rng.choice(  # noqa: E731
            a.logical_total, 24, replace=False
        )
        fifo = StripedTapeArray(
            [Cartridge(f"v{i}", t) for i, t in enumerate(tapes)],
            scheduler=get_scheduler("FIFO"),
        )
        loss = StripedTapeArray(
            [Cartridge(f"v{i}", t) for i, t in enumerate(tapes)],
        )
        batch = batch_for(fifo)
        fifo_time = fifo.service_batch(batch).makespan_seconds
        loss_time = loss.service_batch(batch).makespan_seconds
        # The injected scheduler is actually used: unscheduled FIFO
        # order is slower than the default LOSS on the same batch.
        assert loss_time < fifo_time
