"""Batching queue and policy."""

import pytest

from repro.online import BatchPolicy, BatchQueue
from repro.workload import TimedRequest


def push_n(queue, count, start=0.0):
    for i in range(count):
        queue.push(TimedRequest(start + i, segment=i))


class TestPolicyValidation:
    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)

    def test_bad_deadline(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_seconds=0)


class TestReady:
    def test_empty_never_ready(self):
        queue = BatchQueue()
        assert not queue.ready(1e9, drive_idle=True)

    def test_full_batch_triggers(self):
        queue = BatchQueue(
            BatchPolicy(max_batch=3, flush_when_idle=False)
        )
        push_n(queue, 2)
        assert not queue.ready(10.0, drive_idle=True)
        push_n(queue, 1, start=5.0)
        assert queue.ready(10.0, drive_idle=False)

    def test_deadline_triggers(self):
        queue = BatchQueue(
            BatchPolicy(
                max_batch=100, max_wait_seconds=60.0,
                flush_when_idle=False,
            )
        )
        queue.push(TimedRequest(0.0, 1))
        assert not queue.ready(59.0, drive_idle=True)
        assert queue.ready(60.0, drive_idle=False)

    def test_idle_flush(self):
        eager = BatchQueue(BatchPolicy(max_batch=100,
                                       flush_when_idle=True))
        eager.push(TimedRequest(0.0, 1))
        assert eager.ready(0.0, drive_idle=True)
        assert not eager.ready(0.0, drive_idle=False)


class TestFlush:
    def test_oldest_first_and_capped(self):
        queue = BatchQueue(BatchPolicy(max_batch=3))
        push_n(queue, 5)
        batch = queue.flush()
        assert [r.segment for r in batch] == [0, 1, 2]
        assert len(queue) == 2
        assert queue.oldest_arrival == 3.0

    def test_flush_empties(self):
        queue = BatchQueue(BatchPolicy(max_batch=10))
        push_n(queue, 4)
        queue.flush()
        assert len(queue) == 0
        assert queue.oldest_arrival is None
