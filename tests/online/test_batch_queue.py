"""Batching queue and policy."""

import pytest

from repro.online import BatchPolicy, BatchQueue
from repro.workload import TimedRequest


def push_n(queue, count, start=0.0):
    for i in range(count):
        queue.push(TimedRequest(start + i, segment=i))


class TestPolicyValidation:
    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)

    def test_bad_deadline(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_seconds=0)

    def test_nan_deadline_rejected_with_inf_hint(self):
        # Regression: NaN slipped past the <= 0 check (every comparison
        # against NaN is False) and silently disabled the deadline.
        with pytest.raises(ValueError, match="float\\('inf'\\)"):
            BatchPolicy(max_wait_seconds=float("nan"))

    def test_nonpositive_deadline_message_mentions_inf(self):
        with pytest.raises(ValueError, match="float\\('inf'\\)"):
            BatchPolicy(max_wait_seconds=-3.0)

    def test_inf_deadline_is_the_escape_hatch(self):
        policy = BatchPolicy(max_wait_seconds=float("inf"))
        queue = BatchQueue(policy)
        queue.push(TimedRequest(0.0, 1))
        assert not queue.ready(1e12, drive_idle=False)


class TestReady:
    def test_empty_never_ready(self):
        queue = BatchQueue()
        assert not queue.ready(1e9, drive_idle=True)

    def test_full_batch_triggers(self):
        queue = BatchQueue(
            BatchPolicy(max_batch=3, flush_when_idle=False)
        )
        push_n(queue, 2)
        assert not queue.ready(10.0, drive_idle=True)
        push_n(queue, 1, start=5.0)
        assert queue.ready(10.0, drive_idle=False)

    def test_deadline_triggers(self):
        queue = BatchQueue(
            BatchPolicy(
                max_batch=100, max_wait_seconds=60.0,
                flush_when_idle=False,
            )
        )
        queue.push(TimedRequest(0.0, 1))
        assert not queue.ready(59.0, drive_idle=True)
        assert queue.ready(60.0, drive_idle=False)

    def test_idle_flush(self):
        eager = BatchQueue(BatchPolicy(max_batch=100,
                                       flush_when_idle=True))
        eager.push(TimedRequest(0.0, 1))
        assert eager.ready(0.0, drive_idle=True)
        assert not eager.ready(0.0, drive_idle=False)


class TestFlush:
    def test_oldest_first_and_capped(self):
        queue = BatchQueue(BatchPolicy(max_batch=3))
        push_n(queue, 5)
        batch = queue.flush()
        assert [r.segment for r in batch] == [0, 1, 2]
        assert len(queue) == 2
        assert queue.oldest_arrival == 3.0

    def test_flush_empties(self):
        queue = BatchQueue(BatchPolicy(max_batch=10))
        push_n(queue, 4)
        queue.flush()
        assert len(queue) == 0
        assert queue.oldest_arrival is None


class TestRequeuedArrivals:
    """A requeued request re-enters at the tail with an *older* arrival;
    the deadline and flush order must key off arrival time, not push
    order."""

    def test_oldest_arrival_is_the_minimum_not_the_head(self):
        queue = BatchQueue(BatchPolicy(max_batch=10))
        queue.push(TimedRequest(100.0, 1))
        queue.push(TimedRequest(20.0, 2))  # requeued, older arrival
        assert queue.oldest_arrival == 20.0

    def test_deadline_keys_off_oldest_queued_arrival(self):
        queue = BatchQueue(
            BatchPolicy(
                max_batch=100, max_wait_seconds=60.0,
                flush_when_idle=False,
            )
        )
        queue.push(TimedRequest(100.0, 1))
        queue.push(TimedRequest(20.0, 2))
        # 60 s after the *newer* arrival but only after the boundary of
        # the older one should it be ready: 20 + 60 = 80.
        assert not queue.ready(79.9, drive_idle=False)
        assert queue.ready(80.0, drive_idle=False)

    def test_deadline_boundary_is_inclusive(self):
        queue = BatchQueue(
            BatchPolicy(
                max_batch=100, max_wait_seconds=60.0,
                flush_when_idle=False,
            )
        )
        queue.push(TimedRequest(5.0, 1))
        assert not queue.ready(64.999, drive_idle=False)
        assert queue.ready(65.0, drive_idle=False)

    def test_flush_releases_requeued_request_first(self):
        queue = BatchQueue(BatchPolicy(max_batch=2))
        queue.push(TimedRequest(10.0, segment=1))
        queue.push(TimedRequest(30.0, segment=2))
        queue.push(TimedRequest(5.0, segment=3))  # requeued
        batch = queue.flush()
        assert [r.segment for r in batch] == [3, 1]
        assert queue.oldest_arrival == 30.0
