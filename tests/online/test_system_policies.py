"""Online system: deadline-driven and size-driven batching."""

import pytest

from repro.geometry import tiny_tape
from repro.online import BatchPolicy, TertiaryStorageSystem
from repro.workload import TimedRequest


@pytest.fixture()
def tape():
    return tiny_tape(seed=31)


class TestDeadlinePolicy:
    def test_deadline_forces_partial_batch(self, tape):
        # One request, then silence: without flush-on-idle the batch
        # must go out when the deadline expires.
        policy = BatchPolicy(
            max_batch=50,
            max_wait_seconds=120.0,
            flush_when_idle=False,
        )
        system = TertiaryStorageSystem(geometry=tape, policy=policy)
        stats = system.run([TimedRequest(0.0, 10)])
        assert stats.count == 1
        assert len(system.batches) == 1
        assert system.batches[0].size == 1
        # It waited for the deadline before starting service.
        assert system.batches[0].start_seconds >= 120.0

    def test_full_batch_skips_deadline(self, tape):
        policy = BatchPolicy(
            max_batch=3,
            max_wait_seconds=1e6,
            flush_when_idle=False,
        )
        system = TertiaryStorageSystem(geometry=tape, policy=policy)
        requests = [TimedRequest(float(i), i * 5) for i in range(3)]
        system.run(requests)
        assert len(system.batches) == 1
        assert system.batches[0].start_seconds < 100.0


class TestIdleFlush:
    def test_idle_drive_takes_singletons(self, tape):
        policy = BatchPolicy(max_batch=100, flush_when_idle=True)
        system = TertiaryStorageSystem(geometry=tape, policy=policy)
        system.run([TimedRequest(0.0, 10)])
        assert len(system.batches) == 1
        assert system.batches[0].start_seconds == pytest.approx(0.0)

    def test_busy_drive_accumulates(self, tape):
        # While the first (long) batch runs, later arrivals pool into
        # one second batch instead of many singletons.
        policy = BatchPolicy(max_batch=100, flush_when_idle=True)
        system = TertiaryStorageSystem(geometry=tape, policy=policy)
        requests = [TimedRequest(0.0, tape.total_segments - 1)]
        requests += [
            TimedRequest(1.0 + i, i * 3) for i in range(10)
        ]
        system.run(requests)
        assert len(system.batches) == 2
        assert system.batches[1].size == 10


class TestAccounting:
    def test_all_responses_recorded_once(self, tape):
        policy = BatchPolicy(max_batch=4, flush_when_idle=False)
        system = TertiaryStorageSystem(geometry=tape, policy=policy)
        requests = [TimedRequest(float(i), (i * 7) % 100)
                    for i in range(12)]
        stats = system.run(requests)
        assert stats.count == 12
        assert sum(b.size for b in system.batches) == 12

    def test_batch_algorithm_label(self, tape):
        system = TertiaryStorageSystem(geometry=tape)
        system.run([TimedRequest(0.0, 5), TimedRequest(0.0, 50)])
        assert system.batches[0].algorithm == "LOSS"
