"""Response-time statistics."""

import pytest

from repro.online import ResponseStats


class TestResponseStats:
    def test_mean_and_max(self):
        stats = ResponseStats()
        stats.record(0.0, 10.0)
        stats.record(5.0, 25.0)
        assert stats.count == 2
        assert stats.mean_seconds == pytest.approx(15.0)
        assert stats.max_seconds == pytest.approx(20.0)

    def test_percentile(self):
        stats = ResponseStats()
        for wait in range(1, 101):
            stats.record(0.0, float(wait))
        assert stats.percentile(50) == pytest.approx(50.5)
        assert stats.percentile(95) == pytest.approx(95.05)

    def test_rejects_time_travel(self):
        stats = ResponseStats()
        with pytest.raises(ValueError):
            stats.record(10.0, 5.0)

    def test_empty_is_zero(self):
        stats = ResponseStats()
        assert stats.mean_seconds == 0.0
        assert stats.max_seconds == 0.0
        assert stats.percentile(99) == 0.0

    def test_throughput(self):
        stats = ResponseStats()
        for _ in range(50):
            stats.record(0.0, 1.0)
        assert stats.throughput_per_hour(3600.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            stats.throughput_per_hour(0.0)
