"""Response-time and cache statistics."""

import pytest

from repro.exceptions import NoSamplesError
from repro.online import CacheStats, ResponseStats


class TestResponseStats:
    def test_mean_and_max(self):
        stats = ResponseStats()
        stats.record(0.0, 10.0)
        stats.record(5.0, 25.0)
        assert stats.count == 2
        assert stats.mean_seconds == pytest.approx(15.0)
        assert stats.max_seconds == pytest.approx(20.0)

    def test_percentile(self):
        stats = ResponseStats()
        for wait in range(1, 101):
            stats.record(0.0, float(wait))
        assert stats.percentile(50) == pytest.approx(50.5)
        assert stats.percentile(95) == pytest.approx(95.05)

    def test_rejects_time_travel(self):
        stats = ResponseStats()
        with pytest.raises(ValueError):
            stats.record(10.0, 5.0)

    def test_empty_aggregates_raise(self):
        stats = ResponseStats()
        assert stats.count == 0
        with pytest.raises(NoSamplesError):
            stats.mean_seconds
        with pytest.raises(NoSamplesError):
            stats.max_seconds
        with pytest.raises(NoSamplesError):
            stats.percentile(99)
        # Throughput of zero requests is well-defined.
        assert stats.throughput_per_hour(3600.0) == 0.0

    def test_throughput(self):
        stats = ResponseStats()
        for _ in range(50):
            stats.record(0.0, 1.0)
        assert stats.throughput_per_hour(3600.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            stats.throughput_per_hour(0.0)


class TestCacheStats:
    def test_request_and_segment_accounting(self):
        stats = CacheStats()
        stats.record_hit(segments=3)
        stats.record_miss(segments=1)
        assert stats.lookups == 2
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.hit_segments == 3
        assert stats.hit_bytes == 3 * 32 * 1024
        assert stats.miss_bytes == 32 * 1024
        assert stats.byte_hit_rate == pytest.approx(0.75)

    def test_empty_rates_raise(self):
        stats = CacheStats()
        with pytest.raises(NoSamplesError):
            stats.hit_rate
        with pytest.raises(NoSamplesError):
            stats.byte_hit_rate
