"""The online tertiary storage system."""

import pytest

from repro.geometry import tiny_tape
from repro.online import BatchPolicy, TertiaryStorageSystem
from repro.workload import PoissonArrivals, TimedRequest


@pytest.fixture()
def tape():
    return tiny_tape(seed=5)


class TestSystem:
    def test_services_every_request(self, tape):
        requests = PoissonArrivals(
            rate_per_hour=400.0, total_segments=tape.total_segments,
            seed=1,
        ).batch(2 * 3600.0)
        system = TertiaryStorageSystem(
            geometry=tape, policy=BatchPolicy(max_batch=16)
        )
        stats = system.run(requests)
        assert stats.count == len(requests)

    def test_responses_nonnegative_and_recorded(self, tape):
        requests = [
            TimedRequest(0.0, 5),
            TimedRequest(1.0, 90),
            TimedRequest(2.0, 40),
        ]
        system = TertiaryStorageSystem(geometry=tape)
        stats = system.run(requests)
        assert stats.count == 3
        assert stats.mean_seconds > 0.0

    def test_batches_recorded(self, tape):
        requests = [TimedRequest(float(i), i * 3) for i in range(20)]
        system = TertiaryStorageSystem(
            geometry=tape, policy=BatchPolicy(max_batch=5,
                                              flush_when_idle=False)
        )
        system.run(requests)
        assert len(system.batches) == 4
        assert all(b.size == 5 for b in system.batches)
        assert all(b.algorithm for b in system.batches)

    def test_drive_busy_serializes_batches(self, tape):
        requests = [TimedRequest(0.0, 5), TimedRequest(0.1, 500)]
        system = TertiaryStorageSystem(
            geometry=tape, policy=BatchPolicy(max_batch=1)
        )
        system.run(requests)
        first, second = system.batches
        assert second.start_seconds >= (
            first.start_seconds + first.execution_seconds
        )

    def test_duplicate_segments_all_complete(self, tape):
        requests = [
            TimedRequest(0.0, 42),
            TimedRequest(0.5, 42),
            TimedRequest(1.0, 42),
        ]
        system = TertiaryStorageSystem(geometry=tape)
        stats = system.run(requests)
        assert stats.count == 3

    def test_head_carries_over_between_batches(self, tape):
        # The paper's repeated-batches scenario: each batch starts where
        # the previous one ended.
        requests = [TimedRequest(0.0, 10), TimedRequest(0.1, 200)]
        system = TertiaryStorageSystem(
            geometry=tape, policy=BatchPolicy(max_batch=1)
        )
        system.run(requests)
        assert system.drive.position != 0
