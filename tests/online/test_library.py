"""Robotic tape library."""

import pytest

from repro.exceptions import LibraryError, UnknownTape
from repro.geometry import tiny_tape
from repro.online import Cartridge, TapeLibrary


@pytest.fixture()
def library():
    return TapeLibrary(
        [
            Cartridge("alpha", tiny_tape(seed=1)),
            Cartridge("beta", tiny_tape(seed=2)),
        ],
        exchange_seconds=30.0,
    )


class TestShelf:
    def test_labels(self, library):
        assert library.labels() == ["alpha", "beta"]

    def test_duplicate_labels_rejected(self):
        with pytest.raises(LibraryError):
            TapeLibrary(
                [
                    Cartridge("x", tiny_tape(seed=1)),
                    Cartridge("x", tiny_tape(seed=2)),
                ]
            )

    def test_unknown_tape(self, library):
        with pytest.raises(UnknownTape):
            library.mount("gamma")


class TestMounting:
    def test_mount_costs_exchange(self, library):
        spent = library.mount("alpha")
        assert spent == pytest.approx(30.0)
        assert library.mounted_label == "alpha"
        assert library.drive.position == 0

    def test_remount_is_free(self, library):
        library.mount("alpha")
        assert library.mount("alpha") == 0.0

    def test_switch_includes_rewind(self, library):
        library.mount("alpha")
        library.drive.locate(200)
        spent = library.mount("beta")
        # Unmount (rewind + exchange) plus the new mount's exchange.
        assert spent > 60.0
        assert library.mounted_label == "beta"
        assert library.drive.position == 0

    def test_unmount_without_mount(self, library):
        with pytest.raises(LibraryError):
            library.unmount()

    def test_drive_without_mount(self, library):
        with pytest.raises(LibraryError):
            library.drive


class TestClock:
    def test_accumulates_robot_and_drive_time(self, library):
        assert library.clock_seconds == 0.0
        library.mount("alpha")
        assert library.clock_seconds == pytest.approx(30.0)
        library.drive.locate(150)
        moved = library.clock_seconds
        assert moved > 30.0
        library.unmount()
        # Drive time is folded into the library clock at unmount.
        assert library.clock_seconds > moved

    def test_cartridge_model_autobuilt(self):
        cartridge = Cartridge("solo", tiny_tape(seed=3))
        assert cartridge.model.geometry is cartridge.geometry
