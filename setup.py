"""Setup shim.

Kept so that ``pip install -e .`` works on minimal environments without
the ``wheel`` package (pip falls back to the legacy develop install when
invoked with ``--no-use-pep517``).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
